package xtalk

// End-to-end integration tests of the public facade: the full
// characterize -> schedule -> execute pipeline the README advertises.

import (
	"context"
	"strings"
	"testing"
	"time"

	"xtalk/internal/workloads"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow reproduction; run without -short")
	}
	dev, err := NewDevice(Poughkeepsie, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Characterize(dev, CharOneHopBinPacked)
	if err != nil {
		t.Fatal(err)
	}
	nd := rep.NoiseData(dev, 3)
	if len(nd.Conditional) == 0 {
		t.Fatal("characterization found no crosstalk")
	}

	c := NewCircuit(20)
	for i := 0; i < 4; i++ {
		c.CNOT(5, 10)
		c.CNOT(11, 12)
	}
	for _, q := range []int{5, 10, 11, 12} {
		c.Measure(q)
	}

	par, err := ParScheduler().Schedule(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := NewXtalkScheduler(nd, 0.5).Schedule(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	distPar, err := ExecuteMitigated(dev, par, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	distX, err := ExecuteMitigated(dev, xs, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pPar := SuccessProbability(distPar, "0000")
	pX := SuccessProbability(distX, "0000")
	if pX <= pPar {
		t.Fatalf("XtalkSched success %.3f should beat ParSched %.3f on a crosstalk-heavy program", pX, pPar)
	}
}

func TestFacadeRouting(t *testing.T) {
	dev, err := NewDevice(Poughkeepsie, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircuit(20)
	c.H(0)
	c.CNOT(0, 13) // non-adjacent: requires routing
	c.Measure(0)
	routed, err := Route(c, dev.Topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range routed.Gates {
		if g.Kind.IsTwoQubit() && !dev.Topo.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("routed gate %s violates topology", g)
		}
	}
}

func TestFacadeParseAndSchedule(t *testing.T) {
	dev, err := NewDevice(Johannesburg, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := `
# a Bell pair on an edge
h q0
cx q0,q1
measure q0
measure q1
`
	c, err := ParseCircuit(src, dev.Topo.NQubits)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SerialScheduler().Schedule(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(dev, s, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 500 {
		t.Fatalf("shots %d", res.Shots)
	}
	ideal := IdealDistribution(c)
	if ideal["00"] < 0.49 || ideal["11"] < 0.49 {
		t.Fatalf("ideal Bell distribution %v", ideal)
	}
}

func TestFacadeBarrierInsertion(t *testing.T) {
	dev, err := NewDevice(Poughkeepsie, 1)
	if err != nil {
		t.Fatal(err)
	}
	nd := GroundTruthNoiseData(dev, 3)
	c := NewCircuit(20)
	c.CNOT(5, 10)
	c.CNOT(11, 12)
	c.Measure(10)
	c.Measure(11)
	s, err := NewXtalkScheduler(nd, 1).Schedule(c, dev) // omega=1: serialize crosstalk
	if err != nil {
		t.Fatal(err)
	}
	out := InsertBarriers(s)
	if !strings.Contains(out.String(), "barrier") {
		t.Fatalf("expected a barrier in the serialized output:\n%s", out)
	}
}

// TestPartitionedSchedSmoke is the CI wall-clock gate for the scheduling
// engine: partitioned compiles of device-filling supremacy circuits under
// the standard 2s anytime budget must finish within generous ceilings (they
// take well under a second when the theory tiers are healthy), so
// regressions in the difference-logic or simplex layers fail loudly instead
// of silently eating the budget. heavyhex:127 is the full-device case from
// the paper's evaluation and the headline number the simplex fast path is
// held to.
func TestPartitionedSchedSmoke(t *testing.T) {
	if testing.Short() {
		// The dedicated CI step runs this without -short (and without the
		// race detector, whose overhead would distort the ceiling).
		t.Skip("wall-clock gate runs in its own CI step")
	}
	cases := []struct {
		spec    string
		ceiling time.Duration
	}{
		{"heavyhex:27", 60 * time.Second},
		{"heavyhex:127", 120 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			p, err := NewPipelineFromSpec(tc.spec, 1, 0, PipelineConfig{
				Partition: true,
				Budget:    2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			c, err := workloads.SupremacyCircuit(p.Dev.Topo, p.Dev.Topo.NQubits, 3*p.Dev.Topo.NQubits, 1)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			res := p.Run(context.Background(), CompileRequest{Tag: "smoke", Circuit: c})
			elapsed := time.Since(start)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Schedule.Stats.Windows < 2 {
				t.Fatalf("expected a multi-window partitioned solve, got %d windows", res.Schedule.Stats.Windows)
			}
			if elapsed > tc.ceiling {
				t.Fatalf("partitioned %s compile took %v, ceiling %v — theory-layer regression", tc.spec, elapsed, tc.ceiling)
			}
			t.Logf("partitioned %s compile: %v (%s)", tc.spec, elapsed, res.Schedule.Stats)
		})
	}
}

// TestFacadeSpecPipelineOnGeneratedDevice compiles and executes a QAOA
// circuit end-to-end (schedule -> barriers -> execute -> mitigate) on a
// non-preset, generator-backed topology built entirely from a device spec.
func TestFacadeSpecPipelineOnGeneratedDevice(t *testing.T) {
	p, err := NewPipelineFromSpec("grid:5x8", 1, 0, PipelineConfig{
		Shots:    256,
		Mitigate: true,
		Budget:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dev.Topo.NQubits != 40 {
		t.Fatalf("grid:5x8 has %d qubits, want 40", p.Dev.Topo.NQubits)
	}
	c, chain, err := workloads.QAOAChainCircuit(p.Dev.Topo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("chain %v", chain)
	}
	res := p.Run(context.Background(), CompileRequest{Tag: "qaoa", Circuit: c, Seed: 3})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Schedule == nil || res.Barriered == nil {
		t.Fatal("pipeline did not produce a schedule + barriered circuit")
	}
	var total float64
	for _, v := range res.Dist {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("mitigated distribution mass %v", total)
	}
}

// TestFacadeSpecErrors checks the spec grammar is enforced uniformly.
func TestFacadeSpecErrors(t *testing.T) {
	if _, err := NewDeviceFromSpec("torus:4x4", 1); err == nil {
		t.Fatal("bad spec should fail")
	}
	if _, err := NewPipelineFromSpec("grid:0x4", 1, 0, PipelineConfig{}); err == nil {
		t.Fatal("bad spec should fail pipeline construction")
	}
	if _, err := ParseTopology("heavyhex:65"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDayDrift(t *testing.T) {
	d0, err := NewDeviceForDay(Boeblingen, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := NewDeviceForDay(Boeblingen, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e, gc := range d0.Cal.Gates {
		if d3.Cal.Gates[e].Error != gc.Error {
			same = false
		}
	}
	if same {
		t.Fatal("calibration should drift across days")
	}
}
