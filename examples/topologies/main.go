// Topologies: build devices from spec strings — paths, rings, grids,
// IBM-style heavy-hex lattices and random graphs — and schedule the same
// QAOA workload on each through the compilation pipeline, comparing the
// maximally parallel baseline against XtalkSched on modeled success.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"xtalk"
	"xtalk/internal/workloads"
)

func main() {
	specs := []string{
		"linear:8", "ring:12", "grid:4x5", "poughkeepsie", "heavyhex:27", "grid:5x8",
	}
	for _, spec := range specs {
		p, err := xtalk.NewPipelineFromSpec(spec, 1, 0, xtalk.PipelineConfig{
			Budget: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		dev := p.Dev
		nd := xtalk.GroundTruthNoiseData(dev, 3)
		chain, err := workloads.CrosstalkProneChain(dev, 3)
		if err != nil {
			log.Fatal(err)
		}
		c, err := workloads.QAOACircuit(dev.Topo, chain, 1)
		if err != nil {
			log.Fatal(err)
		}
		results := p.Batch(context.Background(), []xtalk.CompileRequest{
			{Tag: "par", Circuit: c, Scheduler: xtalk.ParScheduler()},
			{Tag: "xtalk", Circuit: c},
		})
		for _, r := range results {
			if r.Err != nil {
				log.Fatalf("%s %s: %v", spec, r.Tag, r.Err)
			}
		}
		par, xs := results[0].Schedule, results[1].Schedule
		fmt.Printf("%-13s %3d qubits, %3d couplings, %2d crosstalk pairs | QAOA chain %v\n",
			spec, dev.Topo.NQubits, len(dev.Topo.Edges), len(dev.Cal.HighCrosstalkPairs(3)), chain)
		fmt.Printf("              ParSched:  success %.3f, %d crosstalk overlaps\n",
			par.SuccessEstimate(nd), par.CrosstalkOverlapCount(nd))
		fmt.Printf("              XtalkSched: success %.3f, %d crosstalk overlaps\n\n",
			xs.SuccessEstimate(nd), xs.CrosstalkOverlapCount(nd))
	}
}
