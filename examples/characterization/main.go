// Characterization cost study (the paper's Section 5 / Figure 10 flow):
// compare the four measurement policies' experiment counts and machine time
// on all three devices, then run the cheapest campaign end to end and show
// that it recovers the device's ground-truth crosstalk map.
package main

import (
	"fmt"
	"log"

	"xtalk"
	"xtalk/internal/characterize"
	"xtalk/internal/device"
	"xtalk/internal/rb"
)

func main() {
	for _, name := range []xtalk.SystemName{xtalk.Poughkeepsie, xtalk.Johannesburg, xtalk.Boeblingen} {
		dev, err := xtalk.NewDevice(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		high := dev.Cal.HighCrosstalkPairs(3)
		fmt.Printf("%s:\n", dev.Topo.Name)
		for _, pol := range []characterize.Policy{
			characterize.AllPairs, characterize.OneHop,
			characterize.OneHopBinPacked, characterize.HighCrosstalkOnly,
		} {
			plan := characterize.BuildPlan(dev, pol, high, 1)
			fmt.Printf("  %-22s %4d experiments  %3d pairs  ~%s\n",
				pol, plan.NumExperiments(), plan.NumPairs(),
				plan.MachineTime(rb.PaperConfig()).Round(60e9))
		}
	}

	// Run the bin-packed one-hop campaign for real on Johannesburg and
	// verify detection against ground truth.
	dev, err := xtalk.NewDevice(xtalk.Johannesburg, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := xtalk.Characterize(dev, xtalk.CharOneHopBinPacked)
	if err != nil {
		log.Fatal(err)
	}
	detected := rep.HighCrosstalkPairs(3)
	truth := dev.Cal.HighCrosstalkPairs(3)
	fmt.Printf("\nJohannesburg campaign: detected %d high-crosstalk pairs (ground truth %d)\n",
		len(detected), len(truth))
	match := map[device.EdgePair]bool{}
	for _, p := range truth {
		match[p] = true
	}
	for _, p := range detected {
		ok := "FALSE POSITIVE"
		if match[p] {
			ok = "correct"
		}
		fmt.Printf("  %-12s %s\n", p, ok)
	}
}
