// Quickstart: the end-to-end crosstalk-mitigation pipeline on a simulated
// IBMQ Poughkeepsie — characterize, schedule, execute, compare.
package main

import (
	"fmt"
	"log"

	"xtalk"
)

func main() {
	// 1. A simulated 20-qubit device with ground-truth crosstalk.
	dev, err := xtalk.NewDevice(xtalk.Poughkeepsie, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%d qubits, %d couplings)\n",
		dev.Topo.Name, dev.Topo.NQubits, len(dev.Topo.Edges))

	// 2. Characterize crosstalk with simultaneous randomized benchmarking,
	//    using the paper's optimized plan (1-hop pairs, bin packed).
	rep, err := xtalk.Characterize(dev, xtalk.CharOneHopBinPacked)
	if err != nil {
		log.Fatal(err)
	}
	high := rep.HighCrosstalkPairs(3)
	fmt.Printf("characterization: %d experiments (~%s machine time), %d high-crosstalk pairs:\n",
		rep.Plan.NumExperiments(), rep.MachineTime.Round(1e9), len(high))
	for _, p := range high {
		fmt.Println("  ", p)
	}

	// 3. Build a program that hits a crosstalk pair: parallel CNOTs on the
	//    (5-10, 11-12) couplings, then readout.
	c := xtalk.NewCircuit(20)
	for i := 0; i < 4; i++ {
		c.CNOT(5, 10)
		c.CNOT(11, 12)
	}
	for _, q := range []int{5, 10, 11, 12} {
		c.Measure(q)
	}

	// 4. Schedule with the IBM-default parallel scheduler and with
	//    XtalkSched, then execute both against the device noise.
	nd := rep.NoiseData(dev, 3)
	for _, sched := range []xtalk.Scheduler{
		xtalk.ParScheduler(),
		xtalk.NewXtalkScheduler(nd, 0.5),
	} {
		s, err := sched.Schedule(c, dev)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := xtalk.ExecuteMitigated(dev, s, 4096, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: makespan %.0f ns, P(correct=0000) = %.3f\n",
			s.Scheduler, s.Makespan(), xtalk.SuccessProbability(dist, "0000"))
	}
}
