// Batch: compile and execute many circuits concurrently through the staged
// compilation pipeline, with per-stage statistics — the production path for
// high-throughput workloads.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"xtalk"
)

func main() {
	dev, err := xtalk.NewDevice(xtalk.Poughkeepsie, 1)
	if err != nil {
		log.Fatal(err)
	}

	// One pipeline serves every job: ground-truth noise, XtalkSched with a
	// 5s anytime budget, noisy execution, readout mitigation.
	p := xtalk.NewPipeline(dev, xtalk.PipelineConfig{
		Shots:    1024,
		Mitigate: true,
		Budget:   5 * time.Second,
		Workers:  4,
	})

	// A small job mix: crosstalk-heavy CNOT programs of growing depth plus
	// one textual-source job.
	var reqs []xtalk.CompileRequest
	for depth := 1; depth <= 6; depth++ {
		c := xtalk.NewCircuit(20)
		for i := 0; i < depth; i++ {
			c.CNOT(5, 10)
			c.CNOT(11, 12)
		}
		c.Measure(10)
		c.Measure(11)
		reqs = append(reqs, xtalk.CompileRequest{
			Tag:     fmt.Sprintf("depth-%d", depth),
			Circuit: c,
			Seed:    int64(depth),
		})
	}
	reqs = append(reqs, xtalk.CompileRequest{
		Tag:    "from-source",
		Source: "h q0\ncx q5,q10\ncx q11,q12\nmeasure q10\nmeasure q12",
		Seed:   7,
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	results := p.Batch(ctx, reqs)
	fmt.Printf("compiled+executed %d circuits in %v\n\n", len(results), time.Since(start).Round(time.Millisecond))

	fmt.Println("job          makespan(ns)  xtalk-overlaps  est.success")
	nd := xtalk.GroundTruthNoiseData(dev, 3)
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-12s FAILED: %v\n", r.Tag, r.Err)
			continue
		}
		fmt.Printf("%-12s %12.0f  %14d  %11.3f\n",
			r.Tag, r.Schedule.Makespan(), r.Schedule.CrosstalkOverlapCount(nd), r.Schedule.SuccessEstimate(nd))
	}
	fmt.Println("\nper-stage pipeline statistics:")
	fmt.Print(p.StatsString())
}
