// SWAP-path communication (the paper's headline workload): prepare a Bell
// pair between two distant qubits via meet-in-the-middle SWAP chains, and
// compare the three schedulers' measured error rates.
package main

import (
	"fmt"
	"log"

	"xtalk"
	"xtalk/internal/workloads"
)

func main() {
	dev, err := xtalk.NewDevice(xtalk.Poughkeepsie, 1)
	if err != nil {
		log.Fatal(err)
	}
	nd := xtalk.GroundTruthNoiseData(dev, 3)

	// The paper's example route: qubit 0 to qubit 13 (5 hops).
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWAP circuit 0 -> 13: %d gates, %d CNOTs\n\n",
		len(c.Gates), len(c.TwoQubitGates()))

	for _, sched := range []xtalk.Scheduler{
		xtalk.SerialScheduler(),
		xtalk.ParScheduler(),
		xtalk.NewXtalkScheduler(nd, 0.5),
	} {
		s, err := sched.Schedule(c, dev)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := xtalk.ExecuteMitigated(dev, s, 8192, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s makespan %6.0f ns   Bell-state error %.3f\n",
			s.Scheduler, s.Makespan(), xtalk.BellStateError(dist))
	}

	// Show XtalkSched's barrier-enforced output circuit.
	xs, err := xtalk.NewXtalkScheduler(nd, 0.5).Schedule(c, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nXtalkSched schedule:")
	fmt.Println(xs.Render())
	fmt.Println("executable circuit with barriers:")
	fmt.Println(xtalk.InsertBarriers(xs))
}
