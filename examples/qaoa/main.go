// QAOA omega sweep (the paper's Figure 8 flow): run a hardware-efficient
// ansatz on a crosstalk-prone region and sweep the crosstalk weight factor,
// showing that intermediate omega minimizes cross entropy.
package main

import (
	"fmt"
	"log"

	"xtalk"
	"xtalk/internal/workloads"
)

func main() {
	dev, err := xtalk.NewDevice(xtalk.Poughkeepsie, 1)
	if err != nil {
		log.Fatal(err)
	}
	nd := xtalk.GroundTruthNoiseData(dev, 3)

	region := []int{5, 10, 11, 12} // crosstalk-prone chain
	c, err := workloads.QAOACircuit(dev.Topo, region, 1)
	if err != nil {
		log.Fatal(err)
	}
	ideal := xtalk.IdealDistribution(c)
	fmt.Printf("QAOA on qubits %v: %d gates, ideal entropy %.3f\n\n",
		region, len(c.Gates), xtalk.CrossEntropy(ideal, ideal))

	fmt.Println("omega   cross-entropy (lower is better)")
	for _, omega := range []float64{0, 0.05, 0.1, 0.2, 0.5, 1.0} {
		s, err := xtalk.NewXtalkScheduler(nd, omega).Schedule(c, dev)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := xtalk.ExecuteMitigated(dev, s, 8192, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f    %.3f\n", omega, xtalk.CrossEntropy(ideal, dist))
	}
}
