package xtalk

// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record). Each benchmark regenerates its figure's data at
// reduced shot counts; run `go run ./cmd/xtalkexp -exp all` for full-size
// reproductions.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"xtalk/internal/circuit"
	"xtalk/internal/core"
	"xtalk/internal/device"
	"xtalk/internal/experiments"
	"xtalk/internal/rb"
	"xtalk/internal/workloads"
)

func init() {
	// Keep per-schedule SMT budgets small during benchmarking so the
	// heavyweight figure benches (QAOA / Hidden Shift omega sweeps) finish
	// in one iteration each.
	experiments.SchedulerBudget = 2 * time.Second
}

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Shots: 256, Threshold: 3}
}

func benchRB() rb.Config {
	return rb.Config{Lengths: []int{1, 6, 14, 26}, Sequences: 4, Shots: 48, Seed: 1}
}

// BenchmarkFig3Characterization regenerates the crosstalk maps (Figure 3):
// SRB over 1-hop pairs plus a long-range sample on one device per iteration.
func BenchmarkFig3Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(device.Johannesburg, benchOpts(), benchRB())
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllHighAtOneHop {
			b.Fatal("long-range crosstalk detected")
		}
	}
}

// BenchmarkFig4DailyVariation regenerates the daily drift series (Figure 4).
func BenchmarkFig4DailyVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts(), benchRB(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if !res.PairSetStable {
			b.Fatal("pair set drifted")
		}
	}
}

// BenchmarkFig5SwapErrorRates regenerates the SWAP-circuit error comparison
// (Figures 5a-5c) on Johannesburg (the smallest benchmark set).
func BenchmarkFig5SwapErrorRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(context.Background(), device.Johannesburg, 0.5, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.GeomeanImprovement < 1 {
			b.Fatalf("XtalkSched lost to ParSched: %v", res.GeomeanImprovement)
		}
	}
}

// BenchmarkFig5dDurations regenerates the program-duration comparison
// (Figure 5d): pure scheduling, no simulation.
func BenchmarkFig5dDurations(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	cfg := core.DefaultXtalkConfig()
	pairs := workloads.SwapBenchmarkPairs[device.Poughkeepsie]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pair := range pairs {
			c, err := workloads.SwapCircuit(dev.Topo, pair[0], pair[1])
			if err != nil {
				b.Fatal(err)
			}
			for _, sched := range []core.Scheduler{core.SerialSched{}, core.ParSched{}, core.NewXtalkSched(nd, cfg)} {
				if _, err := sched.Schedule(c, dev); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFig6ExampleSchedules regenerates the Figure 6 schedule renders.
func BenchmarkFig6ExampleSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Optimality regenerates the near-optimality comparison
// (Figure 7).
func BenchmarkFig7Optimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8QAOA regenerates the QAOA cross-entropy omega sweep
// (Figure 8).
func BenchmarkFig8QAOA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9HiddenShift regenerates the Hidden Shift omega-sensitivity
// study (Figure 9, redundant-CNOT variant).
func BenchmarkFig9HiddenShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(context.Background(), true, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10CharacterizationCost regenerates the characterization cost
// table (Figure 10): planning only, no RB simulation.
func BenchmarkFig10CharacterizationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 12 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkScalability regenerates the Section 9.4 compile-time scaling
// study (the smallest instance per iteration; the full sweep runs via
// `xtalkexp -exp scalability`).
func BenchmarkScalability(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c, err := workloads.SupremacyCircuit(dev.Topo, 6, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultXtalkConfig()
	cfg.CompactErrorEncoding = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewXtalkSched(nd, cfg).Schedule(c, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaxVsCompactEncoding compares the paper-faithful powerset
// error encoding (Eq. 7-8) against the linear compact encoding on the same
// circuit (a DESIGN.md ablation).
func BenchmarkAblationMaxVsCompactEncoding(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, compact := range []bool{false, true} {
		name := "powerset"
		if compact {
			name = "compact"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultXtalkConfig()
			cfg.CompactErrorEncoding = compact
			for i := 0; i < b.N; i++ {
				if _, err := core.NewXtalkSched(nd, cfg).Schedule(c, dev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaxVsSumComposition compares the paper's max rule for
// conditional-error composition (Eq. 6) against additive composition (a
// DESIGN.md ablation).
func BenchmarkAblationMaxVsSumComposition(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, sum := range []bool{false, true} {
		name := "max-rule"
		if sum {
			name = "sum-rule"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultXtalkConfig()
			cfg.SumErrorComposition = sum
			for i := 0; i < b.N; i++ {
				if _, err := core.NewXtalkSched(nd, cfg).Schedule(c, dev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlignmentConstraints measures the cost of the IBMQ
// no-partial-overlap constraints (Eq. 11-13) on solve time.
func BenchmarkAblationAlignmentConstraints(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "aligned"
		if disable {
			name = "unconstrained"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultXtalkConfig()
			cfg.DisableAlignment = disable
			for i := 0; i < b.N; i++ {
				if _, err := core.NewXtalkSched(nd, cfg).Schedule(c, dev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHeuristicVsExact compares the greedy heuristic scheduler
// against the exact SMT scheduler.
func BenchmarkAblationHeuristicVsExact(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("heuristic", func(b *testing.B) {
		h := &core.HeuristicXtalkSched{Noise: nd, Omega: 0.5}
		for i := 0; i < b.N; i++ {
			if _, err := h.Schedule(c, dev); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smt", func(b *testing.B) {
		x := core.NewXtalkSched(nd, core.DefaultXtalkConfig())
		for i := 0; i < b.N; i++ {
			if _, err := x.Schedule(c, dev); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedulerDeviceSizes tracks scheduler cost as devices grow: the
// same QAOA-chain and supremacy workloads compiled on 20-qubit (preset),
// 27-qubit (Falcon heavy-hex), 40-qubit (grid) and 65-qubit (Hummingbird
// heavy-hex) devices, so the perf trajectory captures scaling beyond the
// paper's fixed 20 qubits.
func BenchmarkSchedulerDeviceSizes(b *testing.B) {
	for _, spec := range []string{"poughkeepsie", "heavyhex:27", "grid:5x8", "heavyhex:65"} {
		dev := device.MustNewFromSpec(spec, 1)
		nd := core.NoiseDataFromDevice(dev, 3)
		qaoa, _, err := workloads.QAOAChainCircuit(dev.Topo, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		sup, err := workloads.SupremacyCircuit(dev.Topo, dev.Topo.NQubits, 3*dev.Topo.NQubits, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultXtalkConfig()
		cfg.CompactErrorEncoding = true
		cfg.Timeout = 2 * time.Second
		b.Run(fmt.Sprintf("%s/%dq/qaoa", spec, dev.Topo.NQubits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewXtalkSched(nd, cfg).Schedule(qaoa, dev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/%dq/supremacy", spec, dev.Topo.NQubits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewXtalkSched(nd, cfg).Schedule(sup, dev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedEngine compares the monolithic SMT scheduler against the
// conflict-partitioned engine on device-filling supremacy circuits under
// the same 2-second anytime budget, across device sizes up to the
// 127-qubit Eagle class. Each sub-benchmark also reports simplex_ns/op —
// the CPU time spent inside the exact rational simplex, summed across
// windows (the rest runs on the native-float difference-logic tier). On a
// multi-core machine concurrently solved windows can make this exceed the
// wall-clock ns/op; on the single-core CI container it reads as a share.
// scripts/bench_sched.sh
// wraps this benchmark and emits BENCH_sched.json (ns/op and per-tier
// timing per device size and engine) so successive PRs have a comparable
// scheduler perf trajectory.
func BenchmarkSchedEngine(b *testing.B) {
	for _, spec := range []string{"linear:12", "heavyhex:27", "grid:5x8", "heavyhex:65", "heavyhex:127"} {
		dev := device.MustNewFromSpec(spec, 1)
		nd := core.NoiseDataFromDevice(dev, 3)
		sup, err := workloads.SupremacyCircuit(dev.Topo, dev.Topo.NQubits, 3*dev.Topo.NQubits, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultXtalkConfig()
		cfg.CompactErrorEncoding = true
		cfg.Timeout = 2 * time.Second
		report := func(b *testing.B, simplex time.Duration, pivots, promotions int64) {
			b.ReportMetric(float64(simplex.Nanoseconds())/float64(b.N), "simplex_ns/op")
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			b.ReportMetric(float64(promotions)/float64(b.N), "promotions/op")
		}
		b.Run(fmt.Sprintf("%s/%dq/monolithic", spec, dev.Topo.NQubits), func(b *testing.B) {
			var simplex time.Duration
			var pivots, promotions int64
			for i := 0; i < b.N; i++ {
				s, err := core.NewXtalkSched(nd, cfg).Schedule(sup, dev)
				if err != nil {
					b.Fatal(err)
				}
				simplex += s.Stats.SimplexTime
				pivots += s.Stats.Pivots
				promotions += s.Stats.Promotions
			}
			report(b, simplex, pivots, promotions)
		})
		b.Run(fmt.Sprintf("%s/%dq/partitioned", spec, dev.Topo.NQubits), func(b *testing.B) {
			var simplex time.Duration
			var pivots, promotions int64
			for i := 0; i < b.N; i++ {
				s, err := core.NewPartitionedXtalkSched(nd, cfg, core.PartitionOpts{}).Schedule(sup, dev)
				if err != nil {
					b.Fatal(err)
				}
				simplex += s.Stats.SimplexTime
				pivots += s.Stats.Pivots
				promotions += s.Stats.Promotions
			}
			report(b, simplex, pivots, promotions)
		})
	}
}

// BenchmarkRBExperiment measures one simultaneous-RB measurement, the unit
// of characterization cost.
func BenchmarkRBExperiment(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	gi, gj := device.NewEdge(10, 15), device.NewEdge(11, 12)
	cfg := benchRB()
	for i := 0; i < b.N; i++ {
		if _, _, err := rb.MeasureSimultaneous(dev, gi, gj, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseExecutor measures Monte-Carlo execution throughput for a
// SWAP circuit.
func BenchmarkNoiseExecutor(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	c, err := workloads.SwapCircuit(dev.Topo, 0, 13)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.ParSched{}.Schedule(c, dev)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(dev, s, 64, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMTSchedulerSolve isolates the SMT solve on the Figure 6 circuit.
func BenchmarkSMTSchedulerSolve(b *testing.B) {
	dev := device.MustNew(device.Poughkeepsie, 1)
	nd := core.NoiseDataFromDevice(dev, 3)
	c := circuit.New(20)
	c.SWAP(0, 5)
	c.SWAP(13, 12)
	c.SWAP(5, 10)
	c.SWAP(12, 11)
	c.CNOT(10, 11)
	c.Measure(10)
	c.Measure(11)
	dc := c.DecomposeSwaps()
	x := core.NewXtalkSched(nd, core.DefaultXtalkConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Schedule(dc, dev); err != nil {
			b.Fatal(err)
		}
	}
}
