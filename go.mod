module xtalk

go 1.22
