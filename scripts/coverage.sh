#!/usr/bin/env bash
# Coverage report over the short suite: per-package statement coverage plus
# per-function detail for the certifier, with a hard gate — the independent
# schedule certifier (internal/certify) is the last line of defense against
# engine bugs, so its own coverage must stay >= CERTIFY_FLOOR percent.
set -euo pipefail

cd "$(dirname "$0")/.."
CERTIFY_FLOOR="${CERTIFY_FLOOR:-90}"
PROFILE="$(mktemp)"
trap 'rm -f "$PROFILE"' EXIT

go test -short -coverprofile="$PROFILE" ./...

echo
echo "== per-package statement coverage (short suite) =="
awk '
  NR > 1 {
    split($1, loc, ":")
    pkg = loc[1]
    sub(/\/[^\/]*$/, "", pkg)
    stmts[pkg] += $2
    if ($3 > 0) covered[pkg] += $2
  }
  END {
    for (p in stmts)
      printf "%-38s %6.1f%%  (%d/%d statements)\n", p, 100 * covered[p] / stmts[p], covered[p], stmts[p]
  }
' "$PROFILE" | sort

echo
echo "== function coverage: internal/certify =="
go tool cover -func="$PROFILE" | grep -E '^xtalk/internal/certify/|^total:'

CERTIFY_PCT="$(awk '
  NR > 1 && $1 ~ /^xtalk\/internal\/certify\// {
    stmts += $2
    if ($3 > 0) covered += $2
  }
  END { if (stmts == 0) print "0"; else printf "%.1f", 100 * covered / stmts }
' "$PROFILE")"

echo
if ! awk -v pct="$CERTIFY_PCT" -v floor="$CERTIFY_FLOOR" 'BEGIN { exit !(pct >= floor) }'; then
  echo "coverage gate FAILED: internal/certify at ${CERTIFY_PCT}% < ${CERTIFY_FLOOR}% floor" >&2
  exit 1
fi
echo "coverage gate OK: internal/certify at ${CERTIFY_PCT}% (floor ${CERTIFY_FLOOR}%)"
