#!/usr/bin/env bash
# Smoke test for the xtalkd compilation daemon: start it on heavyhex:27,
# compile the same circuit twice (second response must be a cache hit —
# via the xtalksched -serve client to exercise that path too), shut down
# cleanly with SIGTERM, then restart over the same disk store and assert
# the warm hit is served from disk with zero solver invocations. A final
# phase checks two-daemon consistent-hash peer routing and runs a short
# xtalkload trace. CI runs this after the unit suite.
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:${XTALKD_PORT:-18077}"
ADDR_B="127.0.0.1:${XTALKD_PORT_B:-18078}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/xtalkd" ./cmd/xtalkd
go build -o "$TMP/xtalksched" ./cmd/xtalksched
go build -o "$TMP/xtalkcert" ./cmd/xtalkcert
go build -o "$TMP/xtalkload" ./cmd/xtalkload

# -certify: every compile the daemon serves must also pass the independent
# schedule certifier before it leaves the pipeline. -store enables the
# persistent tier the restart phase below depends on.
"$TMP/xtalkd" -addr "$ADDR" -device heavyhex:27 -partition -budget 2s -certify \
  -store "$TMP/store" >"$TMP/xtalkd.log" 2>&1 &
XTALKD_PID=$!

fail() {
  echo "smoke_xtalkd: $1" >&2
  echo "--- daemon log ---" >&2
  cat "$TMP/xtalkd.log" >&2 || true
  kill "$XTALKD_PID" 2>/dev/null || true
  exit 1
}

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$XTALKD_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "daemon never became healthy"

# First compile: cold. Raw-QASM body exercises the curl-friendly path.
cat >"$TMP/circ.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[27];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
EOF
FIRST="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile")" \
  || fail "first compile failed"
echo "$FIRST" | grep -q '"cached":false' || fail "first compile unexpectedly cached: $FIRST"
echo "$FIRST" | grep -q '"qasm":"OPENQASM' || fail "first compile returned no QASM: $FIRST"

# The served artifact must certify clean offline: xtalkcert reconstructs
# the compiled QASM's timing and re-checks it against the device model
# without trusting the daemon.
echo "$FIRST" | "$TMP/xtalkcert" >"$TMP/cert.log" 2>&1 \
  || { cat "$TMP/cert.log" >&2; fail "served artifact failed independent certification"; }
grep -q 'certified' "$TMP/cert.log" || fail "xtalkcert produced no certification verdict: $(cat "$TMP/cert.log")"

# Second compile through the xtalksched client: must be a cache hit.
SECOND="$("$TMP/xtalksched" -serve "http://$ADDR" -device heavyhex:27 -in "$TMP/circ.qasm")" \
  || fail "client compile failed"
echo "$SECOND" | grep -q 'cache hit' || fail "second compile was not a cache hit: $SECOND"

# Stats must agree: one solve, at least one hit.
STATS="$(curl -fsS "http://$ADDR/stats")"
echo "$STATS" | grep -q '"solves":1' || fail "stats report wrong solve count: $STATS"

# Clean shutdown on SIGTERM.
kill -TERM "$XTALKD_PID"
for _ in $(seq 1 50); do
  kill -0 "$XTALKD_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$XTALKD_PID" 2>/dev/null; then
  fail "daemon did not exit within 10s of SIGTERM"
fi
wait "$XTALKD_PID" || fail "daemon exited non-zero"
grep -q "bye" "$TMP/xtalkd.log" || fail "daemon did not log a clean shutdown"

# --- restart over the same store: the previously compiled fingerprint must
# be served from the disk tier with zero solver invocations.
"$TMP/xtalkd" -addr "$ADDR" -device heavyhex:27 -partition -budget 2s \
  -store "$TMP/store" >"$TMP/xtalkd2.log" 2>&1 &
XTALKD_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$XTALKD_PID" 2>/dev/null || { cat "$TMP/xtalkd2.log" >&2; fail "restarted daemon died during startup"; }
  sleep 0.2
done
WARM="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile")" \
  || fail "post-restart compile failed"
echo "$WARM" | grep -q '"tier":"disk"' || fail "restart compile not served from disk: $WARM"
echo "$WARM" | grep -q '"cached":true' || fail "restart compile not reported cached: $WARM"
WARM_FP="$(echo "$WARM" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')"
FIRST_FP="$(echo "$FIRST" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')"
[ -n "$WARM_FP" ] && [ "$WARM_FP" = "$FIRST_FP" ] || fail "restart fingerprint drifted: $WARM_FP vs $FIRST_FP"
STATS="$(curl -fsS "http://$ADDR/stats")"
echo "$STATS" | grep -q '"solves":0' || fail "restarted daemon invoked the solver: $STATS"
echo "$STATS" | grep -q '"disk_hits":1' || fail "restart hit not attributed to the disk tier: $STATS"
kill -TERM "$XTALKD_PID"
wait "$XTALKD_PID" || fail "restarted daemon exited non-zero"

# --- two-daemon fleet: both daemons build the same consistent-hash ring,
# the non-owner proxies to the owner, and the fleet solves each
# fingerprint exactly once.
"$TMP/xtalkd" -addr "$ADDR" -self "$ADDR" -peers "$ADDR_B" -device heavyhex:27 \
  -partition -budget 2s >"$TMP/fleetA.log" 2>&1 &
PID_A=$!
"$TMP/xtalkd" -addr "$ADDR_B" -self "$ADDR_B" -peers "$ADDR" -device heavyhex:27 \
  -partition -budget 2s >"$TMP/fleetB.log" 2>&1 &
PID_B=$!
fleet_fail() {
  echo "smoke_xtalkd: $1" >&2
  tail -20 "$TMP/fleetA.log" "$TMP/fleetB.log" >&2 || true
  kill "$PID_A" "$PID_B" 2>/dev/null || true
  exit 1
}
for d in "$ADDR" "$ADDR_B"; do
  for _ in $(seq 1 50); do
    curl -fsS "http://$d/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "http://$d/healthz" >/dev/null || fleet_fail "fleet daemon $d never became healthy"
done
RA="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile")" \
  || fleet_fail "fleet compile via A failed"
RB="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR_B/compile")" \
  || fleet_fail "fleet compile via B failed"
echo "$RA$RB" | grep -q '"tier":"peer"' || fleet_fail "no request was proxied to the ring owner: $RA / $RB"
SA="$(curl -fsS "http://$ADDR/stats")"
SB="$(curl -fsS "http://$ADDR_B/stats")"
SOLVES_A="$(echo "$SA" | sed -n 's/.*"solves":\([0-9]*\).*/\1/p')"
SOLVES_B="$(echo "$SB" | sed -n 's/.*"solves":\([0-9]*\).*/\1/p')"
[ "$((SOLVES_A + SOLVES_B))" = "1" ] \
  || fleet_fail "fleet solved $SOLVES_A+$SOLVES_B times for one fingerprint, want exactly 1"

# --- short xtalkload trace against the fleet.
"$TMP/xtalkload" -addr "$ADDR" -devices heavyhex:27 -n 10 -jobs 4 -c 2 \
  -out "$TMP/load.json" >"$TMP/load.log" 2>&1 || fleet_fail "xtalkload smoke failed: $(cat "$TMP/load.log")"
grep -q '"errors": 0' "$TMP/load.json" || fleet_fail "xtalkload reported errors: $(cat "$TMP/load.json")"
grep -q '"requests": 10' "$TMP/load.json" || fleet_fail "xtalkload request count off: $(cat "$TMP/load.json")"

kill -TERM "$PID_A" "$PID_B"
wait "$PID_A" || fleet_fail "fleet daemon A exited non-zero"
wait "$PID_B" || fleet_fail "fleet daemon B exited non-zero"

# --- chaos fleet: daemon A rides the deterministic fault-injection rig —
# its peer link is blackholed, every disk read is corrupted, and the solver
# is slowed — while daemon B runs clean. The fleet must still answer 100%
# of a chaos-mode xtalkload trace (xtalkload retries shed/5xx responses),
# the corrupted store entry must be quarantined and recompiled, and the
# tripped breaker must be visible in /stats.
"$TMP/xtalkd" -addr "$ADDR" -self "$ADDR" -peers "$ADDR_B" -device heavyhex:27 \
  -partition -budget 2s -store "$TMP/store" \
  -peer-timeout 500ms -peer-retries 0 -breaker-failures 1 \
  -faults "seed=7,peer.blackhole=1,store.corrupt=1,solve.delay=50ms" \
  >"$TMP/chaosA.log" 2>&1 &
PID_A=$!
"$TMP/xtalkd" -addr "$ADDR_B" -self "$ADDR_B" -peers "$ADDR" -device heavyhex:27 \
  -partition -budget 2s >"$TMP/chaosB.log" 2>&1 &
PID_B=$!
chaos_fail() {
  echo "smoke_xtalkd: $1" >&2
  tail -20 "$TMP/chaosA.log" "$TMP/chaosB.log" >&2 || true
  kill "$PID_A" "$PID_B" 2>/dev/null || true
  exit 1
}
for d in "$ADDR" "$ADDR_B"; do
  for _ in $(seq 1 50); do
    curl -fsS "http://$d/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "http://$d/healthz" >/dev/null || chaos_fail "chaos daemon $d never became healthy"
done

# The fingerprint persisted by the restart phase now reads back corrupted:
# the daemon must quarantine it and answer with a recompile, not an error.
CHAOS_WARM="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile")" \
  || chaos_fail "compile over corrupted store failed"
CHAOS_FP="$(echo "$CHAOS_WARM" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')"
[ -n "$CHAOS_FP" ] && [ "$CHAOS_FP" = "$FIRST_FP" ] || chaos_fail "chaos fingerprint drifted: $CHAOS_FP vs $FIRST_FP"

"$TMP/xtalkload" -addr "$ADDR" -devices heavyhex:27 -n 20 -jobs 6 -c 4 \
  -chaos -require-avail 1.0 -out "$TMP/chaos.json" >"$TMP/chaosload.log" 2>&1 \
  || chaos_fail "chaos xtalkload below 100% availability: $(cat "$TMP/chaosload.log")"
grep -q '"availability": 1' "$TMP/chaos.json" || chaos_fail "chaos availability not 1: $(cat "$TMP/chaos.json")"

CS="$(curl -fsS "http://$ADDR/stats")"
echo "$CS" | grep -q '"quarantined":[1-9]' || chaos_fail "corrupted store entry was not quarantined: $CS"
echo "$CS" | grep -q '"state":"open"' || chaos_fail "blackholed peer did not trip the breaker: $CS"
kill -TERM "$PID_A" "$PID_B"
wait "$PID_A" || chaos_fail "chaos daemon A exited non-zero"
wait "$PID_B" || chaos_fail "chaos daemon B exited non-zero"
grep -q "injected faults" "$TMP/chaosA.log" || chaos_fail "fault injector summary missing from log"

# --- saturation: one solver slot, no waiting room, slow solver. The second
# concurrent cold compile must be shed with 429 + Retry-After, not queued.
"$TMP/xtalkd" -addr "$ADDR" -device heavyhex:27 -partition -budget 2s \
  -queue 1 -shed-queue -1 -faults "seed=1,solve.delay=3s" \
  >"$TMP/shed.log" 2>&1 &
XTALKD_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
cat >"$TMP/circ2.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[27];
h q[5];
cx q[5],q[6];
EOF
curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile" >/dev/null 2>&1 &
SLOW_PID=$!
sleep 0.5
SHED_HDRS="$(curl -sS -D - -o /dev/null -X POST --data-binary @"$TMP/circ2.qasm" "http://$ADDR/compile")"
echo "$SHED_HDRS" | grep -q "429" || fail "saturated daemon did not shed with 429: $SHED_HDRS"
echo "$SHED_HDRS" | grep -qi "retry-after" || fail "shed response missing Retry-After: $SHED_HDRS"
wait "$SLOW_PID" || fail "admitted request was harmed by shedding"
kill -TERM "$XTALKD_PID"
wait "$XTALKD_PID" || fail "shed-phase daemon exited non-zero"

# --- drain gate: SIGTERM while a slow compile is in flight. The in-flight
# request must complete with 200 (zero loss) and the daemon must log a
# complete drain.
"$TMP/xtalkd" -addr "$ADDR" -device heavyhex:27 -partition -budget 2s \
  -faults "seed=1,solve.delay=2s" >"$TMP/drain.log" 2>&1 &
XTALKD_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary @"$TMP/circ.qasm" \
  "http://$ADDR/compile" >"$TMP/drain.code" 2>/dev/null &
INFLIGHT_PID=$!
sleep 0.5
kill -TERM "$XTALKD_PID"
wait "$INFLIGHT_PID" || fail "in-flight request aborted during drain"
[ "$(cat "$TMP/drain.code")" = "200" ] || fail "in-flight request lost to drain: HTTP $(cat "$TMP/drain.code")"
wait "$XTALKD_PID" || fail "draining daemon exited non-zero"
grep -q "drain complete: zero in-flight" "$TMP/drain.log" \
  || fail "daemon did not certify a complete drain: $(tail -5 "$TMP/drain.log")"

echo "smoke_xtalkd: OK (cold compile + client cache hit + restart disk hit with 0 solves + peer routing + xtalkload + chaos fleet at 100% availability + 429 shed + zero-loss drain)"
