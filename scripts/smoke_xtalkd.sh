#!/usr/bin/env bash
# Smoke test for the xtalkd compilation daemon: start it on heavyhex:27,
# compile the same circuit twice (second response must be a cache hit —
# via the xtalksched -serve client to exercise that path too), then shut
# down cleanly with SIGTERM. CI runs this after the unit suite.
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:${XTALKD_PORT:-18077}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/xtalkd" ./cmd/xtalkd
go build -o "$TMP/xtalksched" ./cmd/xtalksched
go build -o "$TMP/xtalkcert" ./cmd/xtalkcert

# -certify: every compile the daemon serves must also pass the independent
# schedule certifier before it leaves the pipeline.
"$TMP/xtalkd" -addr "$ADDR" -device heavyhex:27 -partition -budget 2s -certify \
  >"$TMP/xtalkd.log" 2>&1 &
XTALKD_PID=$!

fail() {
  echo "smoke_xtalkd: $1" >&2
  echo "--- daemon log ---" >&2
  cat "$TMP/xtalkd.log" >&2 || true
  kill "$XTALKD_PID" 2>/dev/null || true
  exit 1
}

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$XTALKD_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "daemon never became healthy"

# First compile: cold. Raw-QASM body exercises the curl-friendly path.
cat >"$TMP/circ.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[27];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
EOF
FIRST="$(curl -fsS -X POST --data-binary @"$TMP/circ.qasm" "http://$ADDR/compile")" \
  || fail "first compile failed"
echo "$FIRST" | grep -q '"cached":false' || fail "first compile unexpectedly cached: $FIRST"
echo "$FIRST" | grep -q '"qasm":"OPENQASM' || fail "first compile returned no QASM: $FIRST"

# The served artifact must certify clean offline: xtalkcert reconstructs
# the compiled QASM's timing and re-checks it against the device model
# without trusting the daemon.
echo "$FIRST" | "$TMP/xtalkcert" >"$TMP/cert.log" 2>&1 \
  || { cat "$TMP/cert.log" >&2; fail "served artifact failed independent certification"; }
grep -q 'certified' "$TMP/cert.log" || fail "xtalkcert produced no certification verdict: $(cat "$TMP/cert.log")"

# Second compile through the xtalksched client: must be a cache hit.
SECOND="$("$TMP/xtalksched" -serve "http://$ADDR" -device heavyhex:27 -in "$TMP/circ.qasm")" \
  || fail "client compile failed"
echo "$SECOND" | grep -q 'cache hit' || fail "second compile was not a cache hit: $SECOND"

# Stats must agree: one solve, at least one hit.
STATS="$(curl -fsS "http://$ADDR/stats")"
echo "$STATS" | grep -q '"solves":1' || fail "stats report wrong solve count: $STATS"

# Clean shutdown on SIGTERM.
kill -TERM "$XTALKD_PID"
for _ in $(seq 1 50); do
  kill -0 "$XTALKD_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$XTALKD_PID" 2>/dev/null; then
  fail "daemon did not exit within 10s of SIGTERM"
fi
wait "$XTALKD_PID" || fail "daemon exited non-zero"
grep -q "bye" "$TMP/xtalkd.log" || fail "daemon did not log a clean shutdown"

echo "smoke_xtalkd: OK (cold compile + client cache hit + clean shutdown)"
