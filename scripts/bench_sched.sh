#!/bin/sh
# bench_sched.sh — repeatable scheduler perf harness.
#
# Runs BenchmarkSchedEngine (monolithic vs conflict-partitioned SMT
# scheduling on device-filling supremacy circuits, same anytime budget) and
# emits BENCH_sched.json with ns/op per device size and engine, so future
# PRs have a comparable perf trajectory.
#
# Usage: scripts/bench_sched.sh [output.json]   (default: BENCH_sched.json)
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_sched.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkSchedEngine$' -benchtime 1x -timeout 30m . | tee "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN {
	printf "{\n  \"benchmark\": \"BenchmarkSchedEngine\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"unit\": \"ns_per_op\",\n  \"results\": [\n"
}
/^BenchmarkSchedEngine\// {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
	sub(/^BenchmarkSchedEngine\//, "", name)
	if (n++) printf ",\n"
	printf "    {\"case\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
