#!/bin/sh
# bench_sched.sh — repeatable scheduler perf harness.
#
# Runs BenchmarkSchedEngine (monolithic vs conflict-partitioned SMT
# scheduling on device-filling supremacy circuits, same anytime budget) and
# emits BENCH_sched.json with ns/op per device size and engine, plus the
# per-tier theory timing: simplex_ns_per_op is CPU time inside the exact
# rational simplex summed across windows; the remainder runs on the
# native-float difference-logic tier. simplex_share = simplex_ns_per_op /
# ns_per_op — a true share on a single-core runner, but concurrently solved
# windows can push it past 1.0 on multi-core machines (CPU vs wall time).
# pivots_per_op / promotions_per_op track simplex work per schedule: basis
# exchanges, and arithmetic ops that left the dyadic machine-word fast path.
#
# Each case runs BENCHTIME iterations (default 3x, not 1x) so ns_per_op is a
# mean over several schedules instead of a single noisy sample; raise it via
# the environment for tighter numbers on quiet machines.
#
# Usage: scripts/bench_sched.sh [output.json]   (default: BENCH_sched.json)
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_sched.json}"
benchtime="${BENCHTIME:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkSchedEngine$' -benchtime "$benchtime" -timeout 60m . | tee "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN {
	printf "{\n  \"benchmark\": \"BenchmarkSchedEngine\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"unit\": \"ns_per_op\",\n  \"results\": [\n"
}
/^BenchmarkSchedEngine\// {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
	sub(/^BenchmarkSchedEngine\//, "", name)
	ns = ""; simplex = ""; pivots = ""; promotions = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "simplex_ns/op") simplex = $i
		if ($(i + 1) == "pivots/op") pivots = $i
		if ($(i + 1) == "promotions/op") promotions = $i
	}
	if (n++) printf ",\n"
	printf "    {\"case\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
	if (simplex != "") {
		share = (ns > 0) ? simplex / ns : 0
		printf ", \"simplex_ns_per_op\": %.0f, \"simplex_share\": %.3f", simplex, share
	}
	if (pivots != "") printf ", \"pivots\": %.0f", pivots
	if (promotions != "") printf ", \"promotions\": %.0f", promotions
	printf "}"
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
