#!/bin/sh
# prof_serve.sh — measure-first profiling harness for the serving warm path.
#
# Runs BenchmarkServeMemHit (a real net/http round trip against the
# fingerprint memo + encoded-response tier) under the Go CPU and heap
# profilers, then prints
#
#   1. the benchmark line (ns/op, B/op, allocs/op — the allocation budget
#      TestServeMemHitAllocGate pins in CI),
#   2. the top CPU consumers (is the wall syscalls, HTTP parsing, or — the
#      regression this harness exists to catch — JSON re-encoding?),
#   3. the top allocators from the heap profile.
#
# The profiles stay on disk for interactive digging (go tool pprof). For a
# *live* daemon instead of the benchmark, start it with `xtalkd -pprof
# localhost:6060` and point pprof at /debug/pprof on that side listener.
#
# Usage: scripts/prof_serve.sh [outdir]
#   outdir  where cpu.prof/mem.prof/bench.txt land (default ./prof)
set -e
cd "$(dirname "$0")/.."
outdir="${1:-prof}"
mkdir -p "$outdir"

go test -run '^$' -bench '^BenchmarkServeMemHit$' -benchtime "${BENCHTIME:-2s}" -timeout 10m \
	-cpuprofile "$outdir/cpu.prof" -memprofile "$outdir/mem.prof" -benchmem . \
	| tee "$outdir/bench.txt"

echo
echo "== top CPU (${outdir}/cpu.prof) =="
go tool pprof -top -nodecount=15 "$outdir/cpu.prof" | sed -n '/flat%/,$p'

echo
echo "== top allocators (${outdir}/mem.prof) =="
go tool pprof -top -nodecount=10 -sample_index=alloc_space "$outdir/mem.prof" | sed -n '/flat%/,$p'
