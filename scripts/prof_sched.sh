#!/bin/sh
# prof_sched.sh — measure-first profiling harness for the SMT scheduler.
#
# Measure before optimizing: this script packages the workflow behind every
# simplex optimization in this repo. It runs one BenchmarkSchedEngine case
# under the Go CPU/heap profilers, then prints
#
#   1. the benchmark line (ns/op, simplex_ns/op, pivots/op, promotions/op,
#      allocations),
#   2. the top CPU consumers from the profile (is the wall arithmetic,
#      tableau bookkeeping, or the SAT core?),
#   3. the promotion rate — dyadic fast-path exits per pivot — and the
#      promoted bit-length histogram from a -stats run of the same shape
#      (are we paying for big-number arithmetic, and how wide is it?).
#
# The profiles stay on disk for interactive digging (go tool pprof).
#
# Usage: scripts/prof_sched.sh [case] [outdir]
#   case    BenchmarkSchedEngine sub-case (default heavyhex:65/65q/monolithic)
#   outdir  where cpu.prof/mem.prof/bench.txt land (default ./prof)
set -e
cd "$(dirname "$0")/.."
case="${1:-heavyhex:65/65q/monolithic}"
outdir="${2:-prof}"
mkdir -p "$outdir"

go test -run '^$' -bench "^BenchmarkSchedEngine\$/$case" -benchtime 1x -timeout 30m \
	-cpuprofile "$outdir/cpu.prof" -memprofile "$outdir/mem.prof" -benchmem . \
	| tee "$outdir/bench.txt"

echo
echo "== top CPU (${outdir}/cpu.prof) =="
go tool pprof -top -nodecount=15 "$outdir/cpu.prof" | sed -n '/flat%/,$p'

echo
echo "== simplex work =="
awk '/^BenchmarkSchedEngine\// {
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "pivots/op") pivots = $i
		if ($(i + 1) == "promotions/op") promotions = $i
		if ($(i + 1) == "simplex_ns/op") simplex = $i
	}
	if (pivots > 0)
		printf "pivots: %.0f   promotions: %.0f   promotions/pivot: %.1f   ns/pivot: %.0f\n",
			pivots, promotions, promotions / pivots, simplex / pivots
}' "$outdir/bench.txt"

# Bit-length histogram: re-run the same shape through the CLI, which surfaces
# the promoted-operand histogram in its solver-effort line.
spec="${case%%/*}"
engine="${case##*/}"
partition=""
[ "$engine" = "partitioned" ] && partition="-partition"
echo
echo "== promoted-operand bit widths ($spec, $engine) =="
go run ./cmd/xtalksched -device "$spec" -workload supremacy -budget 2s $partition 2>/dev/null \
	| grep 'solver effort' || echo "(no solver line: schedule ran without SMT search)"
