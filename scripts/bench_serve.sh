#!/usr/bin/env bash
# Fleet-serving latency benchmark: start a two-daemon xtalkd fleet with
# persistent stores, seed it with one xtalkload pass (cold solves populate
# both disk tiers), restart both daemons (memory cold, disks warm), then
# replay a larger trace with day churn. The measured pass exercises every
# hit tier — mem (Zipf-hot repeats), disk (restart warm hits), peer
# (fingerprints owned by the other daemon) and cold (new day / new jobs) —
# and writes the per-tier latency split to BENCH_serve.json.
#
# Tunables (env): OUT, DEVICE, DUR, JOBS, CLIENTS.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${OUT:-BENCH_serve.json}"
DEVICE="${DEVICE:-poughkeepsie}"
DUR="${DUR:-10s}"
JOBS="${JOBS:-24}"
CLIENTS="${CLIENTS:-8}"
ADDR_A="127.0.0.1:${BENCH_PORT_A:-18081}"
ADDR_B="127.0.0.1:${BENCH_PORT_B:-18082}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "bench_serve: $1" >&2
  tail -20 "$TMP"/*.log >&2 || true
  exit 1
}

go build -o "$TMP/xtalkd" ./cmd/xtalkd
go build -o "$TMP/xtalkload" ./cmd/xtalkload

# start_daemon <addr> <peer-addr> <store-dir> <log>
# The tiny -cache-kb keeps the memory tier small enough that the disk tier
# stays in play even within one pass.
start_daemon() {
  "$TMP/xtalkd" -addr "$1" -self "$1" -peers "$2" -device "$DEVICE" \
    -partition -budget 2s -store "$3" -cache-kb 256 >>"$4" 2>&1 &
  PIDS+=("$!")
}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "daemon $1 never became healthy"
}

stop_all() {
  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  PIDS=()
}

echo "== phase 1: seed the fleet (cold solves populate both disk stores)"
start_daemon "$ADDR_A" "$ADDR_B" "$TMP/storeA" "$TMP/daemonA.log"
start_daemon "$ADDR_B" "$ADDR_A" "$TMP/storeB" "$TMP/daemonB.log"
wait_healthy "$ADDR_A"
wait_healthy "$ADDR_B"
"$TMP/xtalkload" -addr "$ADDR_A" -devices "$DEVICE" -jobs "$JOBS" -days 1 \
  -c "$CLIENTS" -duration "$DUR" -out "$TMP/seed.json" || fail "seed pass failed"

echo "== phase 2: restart both daemons (memory cold, disks warm)"
stop_all
start_daemon "$ADDR_A" "$ADDR_B" "$TMP/storeA" "$TMP/daemonA.log"
start_daemon "$ADDR_B" "$ADDR_A" "$TMP/storeB" "$TMP/daemonB.log"
wait_healthy "$ADDR_A"
wait_healthy "$ADDR_B"

echo "== phase 3: measured pass (Zipf repeats + restart warm hits + day churn)"
"$TMP/xtalkload" -addr "$ADDR_A" -devices "$DEVICE" -jobs "$((JOBS * 2))" -days 2 \
  -c "$CLIENTS" -duration "$DUR" -out "$OUT" || fail "measured pass failed"

# Sanity: the artifact must carry a latency split for the disk tier (the
# whole point of the restart) and a nonzero hit rate.
python3 - "$OUT" <<'EOF' || fail "benchmark artifact failed sanity checks"
import json, sys
d = json.load(open(sys.argv[1]))
assert d["requests"] > 0 and d["errors"] == 0, d
assert "disk" in d["tiers"], f"no disk-tier samples: {list(d['tiers'])}"
assert d["hit_rate"] > 0, d["hit_rate"]
print("bench_serve: tiers " + ", ".join(
    f"{k}: n={v['count']} p50={v['p50_ms']:.2f}ms p99={v['p99_ms']:.2f}ms"
    for k, v in sorted(d["tiers"].items())))
print(f"bench_serve: hit rate {d['hit_rate']:.2f}, "
      f"saturation mean inflight {d['saturation']['mean_inflight']:.2f}/"
      f"{d['saturation']['max_concurrent']}")
EOF

stop_all
echo "bench_serve: OK -> $OUT"
