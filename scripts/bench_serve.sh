#!/usr/bin/env bash
# Fleet-serving latency benchmark: start a two-daemon xtalkd fleet with
# persistent stores, seed it with one xtalkload pass (cold solves populate
# both disk tiers), restart both daemons (memory cold, disks warm), then
# replay a larger trace with day churn. The measured pass exercises every
# hit tier — mem (Zipf-hot repeats), disk (restart warm hits), peer
# (fingerprints owned by the other daemon) and cold (new day / new jobs) —
# and writes the per-tier latency split to BENCH_serve.json.
#
# The measured pass runs behind a -warmup ramp (connection pool fill, first
# round of Zipf repeats) so the artifact's percentiles and throughput
# describe the steady state. MIN_RPS / MAX_MEM_P50_MS (0 = unchecked) turn
# the sanity block into a regression gate against the refreshed artifact.
#
# Tunables (env): OUT, DEVICE, DUR, WARMUP, JOBS, CLIENTS, MIN_RPS,
# MAX_MEM_P50_MS.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${OUT:-BENCH_serve.json}"
DEVICE="${DEVICE:-poughkeepsie}"
DUR="${DUR:-10s}"
WARMUP="${WARMUP:-2s}"
JOBS="${JOBS:-24}"
# Closed-loop clients: per-request latency ~= CLIENTS / throughput, so on a
# small CI box more clients measure their own queueing delay, not serving.
CLIENTS="${CLIENTS:-4}"
MIN_RPS="${MIN_RPS:-0}"
MAX_MEM_P50_MS="${MAX_MEM_P50_MS:-0}"
ADDR_A="127.0.0.1:${BENCH_PORT_A:-18081}"
ADDR_B="127.0.0.1:${BENCH_PORT_B:-18082}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "bench_serve: $1" >&2
  tail -20 "$TMP"/*.log >&2 || true
  exit 1
}

go build -o "$TMP/xtalkd" ./cmd/xtalkd
go build -o "$TMP/xtalkload" ./cmd/xtalkload

# start_daemon <addr> <peer-addr> <store-dir> <log>
# The tiny -cache-kb keeps the memory tier small enough that the disk tier
# stays in play even within one pass.
start_daemon() {
  "$TMP/xtalkd" -addr "$1" -self "$1" -peers "$2" -device "$DEVICE" \
    -partition -budget 2s -store "$3" -cache-kb 256 -quiet >>"$4" 2>&1 &
  PIDS+=("$!")
}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "daemon $1 never became healthy"
}

stop_all() {
  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  PIDS=()
}

echo "== phase 1: seed the fleet (cold solves populate both disk stores)"
start_daemon "$ADDR_A" "$ADDR_B" "$TMP/storeA" "$TMP/daemonA.log"
start_daemon "$ADDR_B" "$ADDR_A" "$TMP/storeB" "$TMP/daemonB.log"
wait_healthy "$ADDR_A"
wait_healthy "$ADDR_B"
"$TMP/xtalkload" -addr "$ADDR_A" -devices "$DEVICE" -jobs "$JOBS" -days 1 \
  -c "$CLIENTS" -duration "$DUR" -out "$TMP/seed.json" || fail "seed pass failed"

echo "== phase 2: restart both daemons (memory cold, disks warm)"
stop_all
start_daemon "$ADDR_A" "$ADDR_B" "$TMP/storeA" "$TMP/daemonA.log"
start_daemon "$ADDR_B" "$ADDR_A" "$TMP/storeB" "$TMP/daemonB.log"
wait_healthy "$ADDR_A"
wait_healthy "$ADDR_B"

echo "== phase 3: measured pass (Zipf repeats + restart warm hits + day churn)"
"$TMP/xtalkload" -addr "$ADDR_A" -devices "$DEVICE" -jobs "$((JOBS * 2))" -days 2 \
  -c "$CLIENTS" -duration "$DUR" -warmup "$WARMUP" -out "$OUT" || fail "measured pass failed"

# Sanity: the artifact must carry a latency split for the disk tier (the
# whole point of the restart) and a nonzero hit rate — plus the optional
# throughput floor and mem-tier p50 ceiling regression gates.
MIN_RPS="$MIN_RPS" MAX_MEM_P50_MS="$MAX_MEM_P50_MS" \
python3 - "$OUT" <<'EOF' || fail "benchmark artifact failed sanity checks"
import json, os, sys
d = json.load(open(sys.argv[1]))
assert d["requests"] > 0 and d["errors"] == 0, d
# The restart's disk warm hits land in the ramp-up window (each fingerprint
# pays disk exactly once, then the response tier owns it), so check the
# daemon's cumulative counter rather than the measured-window samples.
disk_hits = (d.get("daemon_stats") or {}).get("disk_hits", 0)
assert "disk" in d["tiers"] or disk_hits > 0, \
    f"no disk-tier activity: tiers={list(d['tiers'])} disk_hits={disk_hits}"
assert d["hit_rate"] > 0, d["hit_rate"]
print("bench_serve: tiers " + ", ".join(
    f"{k}: n={v['count']} p50={v['p50_ms']:.2f}ms p99={v['p99_ms']:.2f}ms"
    for k, v in sorted(d["tiers"].items())))
print(f"bench_serve: hit rate {d['hit_rate']:.2f}, "
      f"{d['requests_per_s']:.0f} req/s "
      f"(warmup excluded: {d.get('warmup_requests', 0)} reqs / {d.get('warmup_s', 0):.1f}s), "
      f"saturation mean inflight {d['saturation']['mean_inflight']:.2f}/"
      f"{d['saturation']['max_concurrent']}")
min_rps = float(os.environ.get("MIN_RPS", "0"))
max_mem_p50 = float(os.environ.get("MAX_MEM_P50_MS", "0"))
if min_rps > 0:
    assert d["requests_per_s"] >= min_rps, \
        f"throughput regression: {d['requests_per_s']:.0f} req/s < floor {min_rps:.0f}"
if max_mem_p50 > 0:
    assert "mem" in d["tiers"], f"no mem-tier samples: {list(d['tiers'])}"
    p50 = d["tiers"]["mem"]["p50_ms"]
    assert p50 <= max_mem_p50, \
        f"mem-hit latency regression: p50 {p50:.3f}ms > ceiling {max_mem_p50:.3f}ms"
EOF

stop_all
echo "bench_serve: OK -> $OUT"
