// Package xtalk is the public facade of the crosstalk-mitigation library, a
// Go reproduction of "Software Mitigation of Crosstalk on Noisy
// Intermediate-Scale Quantum Computers" (Murali et al., ASPLOS 2020).
//
// The typical flow mirrors the paper's toolchain (Figure 2):
//
//	dev, _ := xtalk.NewDevice(xtalk.Poughkeepsie, 1)        // hardware model
//	rep, _ := xtalk.Characterize(dev, xtalk.CharOneHopBinPacked) // SRB campaign
//	nd := rep.NoiseData(dev, 3)                              // scheduler input
//	c := xtalk.NewCircuit(20)                                // build program IR
//	c.H(0); c.CNOT(0, 1); c.MeasureAll()
//	sched, _ := xtalk.NewXtalkScheduler(nd, 0.5).Schedule(c, dev)
//	res, _ := xtalk.Execute(dev, sched, 8192, 1)             // noisy execution
//
// The staged pipeline (internal/pipeline) is the production path: it runs
// the same flow as a pluggable stage stack with concurrent batch
// compilation, context cancellation and per-stage statistics:
//
//	p := xtalk.NewPipeline(dev, xtalk.PipelineConfig{Shots: 8192, Mitigate: true})
//	results := p.Batch(ctx, []xtalk.CompileRequest{{Circuit: c1}, {Circuit: c2}})
//
// Deeper control lives in the internal packages; this facade re-exports the
// pieces a downstream user needs for the end-to-end pipeline.
package xtalk

import (
	"xtalk/internal/characterize"
	"xtalk/internal/circuit"
	"xtalk/internal/core"
	"xtalk/internal/device"
	"xtalk/internal/metrics"
	"xtalk/internal/noise"
	"xtalk/internal/pipeline"
	"xtalk/internal/qasm"
	"xtalk/internal/rb"
	"xtalk/internal/serve"
	"xtalk/internal/transpile"
)

// Re-exported core types.
type (
	// Device is a simulated quantum system — an IBMQ preset or a generated
	// topology — with calibration data and ground-truth crosstalk.
	Device = device.Device
	// SystemName identifies a modeled device: a preset name or the
	// canonical spec of a generated topology.
	SystemName = device.SystemName
	// DeviceSpec is the textual device syntax (preset names and topology
	// generators such as "grid:5x8" or "heavyhex:27"); see device.Spec.
	DeviceSpec = device.Spec
	// Edge is an undirected CNOT coupling.
	Edge = device.Edge
	// EdgePair is an unordered pair of couplings (a simultaneous-CNOT
	// combination).
	EdgePair = device.EdgePair
	// Topology is a device coupling graph.
	Topology = device.Topology
	// Circuit is the gate-list program IR.
	Circuit = circuit.Circuit
	// Gate is one instruction of a Circuit.
	Gate = circuit.Gate
	// Schedule assigns start times to a circuit's gates.
	Schedule = core.Schedule
	// Scheduler maps circuits to schedules.
	Scheduler = core.Scheduler
	// NoiseData is the characterization input the schedulers consume.
	NoiseData = core.NoiseData
	// XtalkConfig tunes the SMT scheduler.
	XtalkConfig = core.XtalkConfig
	// Result is a noisy-execution outcome histogram.
	Result = noise.Result
	// Distribution is a probability distribution over outcome bitstrings.
	Distribution = metrics.Distribution
	// CharacterizationReport is the outcome of an SRB campaign.
	CharacterizationReport = characterize.Report
	// CharacterizationPolicy selects the measurement plan (Section 5).
	CharacterizationPolicy = characterize.Policy
	// RBConfig shapes randomized-benchmarking experiments.
	RBConfig = rb.Config
	// Pipeline is the staged compilation pipeline (Parse → Route → Schedule
	// → InsertBarriers → Execute → Mitigate) with concurrent batch support.
	Pipeline = pipeline.Pipeline
	// PipelineConfig shapes a Pipeline.
	PipelineConfig = pipeline.Config
	// PipelineStage is one pluggable step of a Pipeline's stage stack.
	PipelineStage = pipeline.Stage
	// CompileRequest is one work item submitted to a Pipeline.
	CompileRequest = pipeline.Request
	// CompileResult is a Pipeline's per-item outcome.
	CompileResult = pipeline.Result
	// Compiler is the goroutine-safe compilation engine behind Pipeline:
	// immutable after construction, per-request statistics on each Result.
	Compiler = pipeline.Compiler
	// CompiledArtifact is the immutable, cacheable product of one compile,
	// content-addressed by Compiler.Fingerprint.
	CompiledArtifact = pipeline.CompiledArtifact
	// CompileServer is the compilation service: a content-addressed
	// artifact cache with singleflight collapse in front of per-device
	// pipelines (what cmd/xtalkd serves over HTTP).
	CompileServer = serve.Server
	// CompileServerConfig shapes a CompileServer.
	CompileServerConfig = serve.Config
)

// The three modeled IBMQ systems.
const (
	Poughkeepsie = device.Poughkeepsie
	Johannesburg = device.Johannesburg
	Boeblingen   = device.Boeblingen
)

// Characterization policies (Figure 10 order).
const (
	CharAllPairs          = characterize.AllPairs
	CharOneHop            = characterize.OneHop
	CharOneHopBinPacked   = characterize.OneHopBinPacked
	CharHighCrosstalkOnly = characterize.HighCrosstalkOnly
)

// NewDevice synthesizes a simulated device (see internal/device for the
// calibration distributions, which follow the paper's measurements).
func NewDevice(name SystemName, seed int64) (*Device, error) { return device.New(name, seed) }

// NewDeviceForDay synthesizes the device's calibration on a later day
// (error rates drift, the crosstalk pair set stays stable — Figure 4).
func NewDeviceForDay(name SystemName, seed int64, day int) (*Device, error) {
	return device.NewForDay(name, seed, day)
}

// NewDeviceFromSpec synthesizes a device from a device spec: a preset name
// or a topology generator ("linear:N", "ring:N", "grid:RxC", "heavyhex:Q",
// "random:N,DEG,SEED"). Generated topologies receive synthetic calibration
// scaled to their size, including a seeded ground-truth crosstalk pair set.
func NewDeviceFromSpec(spec string, seed int64) (*Device, error) {
	return device.NewFromSpec(spec, seed)
}

// NewDeviceFromSpecForDay is NewDeviceFromSpec on a later calibration day.
func NewDeviceFromSpecForDay(spec string, seed int64, day int) (*Device, error) {
	return device.NewFromSpecForDay(spec, seed, day)
}

// ParseTopology parses a device spec into its coupling topology without
// synthesizing calibration data.
func ParseTopology(spec string) (*Topology, error) { return device.ParseSpec(spec) }

// NewPipelineFromSpec builds a staged compilation pipeline over the device
// described by a device spec (see NewDeviceFromSpec).
func NewPipelineFromSpec(spec string, seed int64, day int, cfg PipelineConfig) (*Pipeline, error) {
	return pipeline.NewFromSpec(spec, seed, day, cfg)
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseCircuit parses the textual gate-list format (see
// internal/circuit.ParseText).
func ParseCircuit(src string, defaultQubits int) (*Circuit, error) {
	return circuit.ParseText(src, defaultQubits)
}

// ParseQASM parses an OpenQASM 2.0 program (the qelib1 subset described in
// internal/qasm).
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// DumpQASM renders a circuit as OpenQASM 2.0.
func DumpQASM(c *Circuit) string { return qasm.Dump(c) }

// Route lowers a logical circuit onto the device topology, inserting
// meet-in-the-middle SWAP chains for non-adjacent CNOTs.
func Route(c *Circuit, topo *Topology) (*Circuit, error) {
	out, _, err := transpile.Route(c, topo)
	return out, err
}

// SerialScheduler serializes every instruction (Table 1).
func SerialScheduler() Scheduler { return core.SerialSched{} }

// ParScheduler is the IBM-default maximum-parallelism scheduler (Table 1).
func ParScheduler() Scheduler { return core.ParSched{} }

// NewXtalkScheduler builds the paper's SMT scheduler over characterization
// data with crosstalk weight omega (Eq. 17).
func NewXtalkScheduler(nd *NoiseData, omega float64) Scheduler {
	cfg := core.DefaultXtalkConfig()
	cfg.Omega = omega
	return core.NewXtalkSched(nd, cfg)
}

// NewXtalkSchedulerWithConfig exposes the full configuration surface.
func NewXtalkSchedulerWithConfig(nd *NoiseData, cfg XtalkConfig) Scheduler {
	return core.NewXtalkSched(nd, cfg)
}

// NewPartitionedScheduler builds the conflict-partitioned scheduling
// engine: the circuit's crosstalk conflict graph (shared-qubit dependencies
// plus pruned CanOlp pairs) is split into independent components and
// bounded time windows, each window is solved as its own small SMT
// instance, and the per-window schedules are stitched back together with
// barrier-respecting offsets. windowGates caps the two-qubit gates per
// window (0 = default). On circuits whose conflict graph is a single
// component fitting one window it produces schedules cost-identical to the
// monolithic scheduler.
func NewPartitionedScheduler(nd *NoiseData, cfg XtalkConfig, windowGates int) Scheduler {
	return core.NewPartitionedXtalkSched(nd, cfg, core.PartitionOpts{MaxWindowGates: windowGates})
}

// NewPortfolioScheduler races the partitioned SMT engine against the greedy
// crosstalk-aware heuristic under cfg.Timeout as the shared anytime budget
// and returns the lower-cost schedule (anytime: on cancellation or budget
// expiry the best incumbent across the portfolio wins).
func NewPortfolioScheduler(nd *NoiseData, cfg XtalkConfig, windowGates int) Scheduler {
	return core.NewPortfolioSched(nd, cfg, core.PartitionOpts{MaxWindowGates: windowGates})
}

// NewPipeline builds a staged compilation pipeline over the device. See
// PipelineConfig for the knobs; the zero config is a compile-only
// ground-truth-noise XtalkSched pipeline.
func NewPipeline(dev *Device, cfg PipelineConfig) *Pipeline { return pipeline.New(dev, cfg) }

// NewCompiler builds the goroutine-safe compilation engine over the device:
// Pipeline without the cross-request statistics, for callers that manage
// aggregation themselves (the serving layer, custom schedulers of work).
func NewCompiler(dev *Device, cfg PipelineConfig) *Compiler { return pipeline.NewCompiler(dev, cfg) }

// NewCompileServer builds the compilation service: a content-addressed
// artifact cache (keyed by Compiler.Fingerprint) with singleflight collapse
// of concurrent identical requests and a bounded admission queue, fronting
// per-device compilation pipelines. cmd/xtalkd exposes it over HTTP.
func NewCompileServer(cfg CompileServerConfig) (*CompileServer, error) { return serve.New(cfg) }

// GroundTruthNoiseData extracts perfect characterization data from the
// device (useful for testing; real flows use Characterize). Results are
// memoized per (system, seed, day, threshold) and shared: treat them as
// read-only.
func GroundTruthNoiseData(dev *Device, threshold float64) *NoiseData {
	return pipeline.GroundTruthNoise(dev, threshold)
}

// DefaultRBConfig is a fast RB experiment shape (scaled-down from the
// paper's 100 sequences x 1024 trials, unbiased).
func DefaultRBConfig() RBConfig { return rb.DefaultConfig() }

// Characterize runs an SRB crosstalk-characterization campaign under the
// given policy with the default RB configuration.
func Characterize(dev *Device, policy CharacterizationPolicy) (*CharacterizationReport, error) {
	return CharacterizeWithConfig(dev, policy, nil, rb.DefaultConfig())
}

// CharacterizeWithConfig gives full control: highPairs seeds the
// HighCrosstalkOnly policy (from a previous full campaign) and cfg shapes
// the RB experiments.
func CharacterizeWithConfig(dev *Device, policy CharacterizationPolicy, highPairs []EdgePair, cfg RBConfig) (*CharacterizationReport, error) {
	return characterize.Run(dev, policy, highPairs, cfg)
}

// TuneOmega selects a crosstalk weight factor for a specific application
// circuit by scheduling it at each candidate omega and scoring with the
// analytic success model (an extension automating the paper's Section 9.3
// sensitivity study). Pass nil candidates for the default sweep.
func TuneOmega(c *Circuit, dev *Device, nd *NoiseData, candidates []float64) (float64, *Schedule, error) {
	return core.TuneOmega(c, dev, nd, candidates)
}

// InsertBarriers converts a schedule into an executable circuit whose
// barriers enforce the schedule's serialization decisions (Section 6's
// post-processing step).
func InsertBarriers(s *Schedule) *Circuit { return core.InsertBarriers(s) }

// Execute runs a schedule on the device's ground-truth noise model for the
// given number of shots.
func Execute(dev *Device, s *Schedule, shots int, seed int64) (*Result, error) {
	return noise.NewExecutor(dev).Run(s, noise.Options{Shots: shots, Seed: seed})
}

// ExecuteMitigated runs a schedule and returns the readout-mitigated outcome
// distribution (the paper applies readout mitigation to all results).
func ExecuteMitigated(dev *Device, s *Schedule, shots int, seed int64) (Distribution, error) {
	res, err := Execute(dev, s, shots, seed)
	if err != nil {
		return nil, err
	}
	return pipeline.Mitigated(dev, res)
}

// IdealDistribution computes the noise-free outcome distribution of a
// circuit.
func IdealDistribution(c *Circuit) Distribution {
	p, _ := noise.IdealProbabilities(c)
	return p
}

// CrossEntropy, BellStateError and SuccessProbability re-export the paper's
// evaluation metrics.
func CrossEntropy(ideal, measured Distribution) float64 {
	return metrics.CrossEntropy(ideal, measured)
}

// BellStateError scores a two-qubit distribution against the ideal Bell
// outcome statistics (the SWAP-circuit metric).
func BellStateError(measured Distribution) float64 { return metrics.BellStateError(measured) }

// SuccessProbability returns the probability mass on the expected bitstring.
func SuccessProbability(measured Distribution, want string) float64 {
	return metrics.SuccessProbability(measured, want)
}
