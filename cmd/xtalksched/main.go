// Command xtalksched schedules a circuit (in the library's textual gate-list
// format) onto a simulated device with SerialSched, ParSched and XtalkSched,
// prints the three timelines, and reports the modeled error costs.
//
// Usage:
//
//	xtalksched -in circuit.txt -system poughkeepsie -omega 0.5
//
// Input format (one gate per line):
//
//	h q0
//	cx q0,q1
//	swap q5,q10
//	measure q0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xtalk/internal/circuit"
	"xtalk/internal/core"
	"xtalk/internal/device"
	"xtalk/internal/qasm"
)

func main() {
	var (
		in     = flag.String("in", "", "input circuit file (default: stdin)")
		system = flag.String("system", "poughkeepsie", "poughkeepsie|johannesburg|boeblingen")
		seed   = flag.Int64("seed", 1, "device seed")
		omega  = flag.Float64("omega", 0.5, "crosstalk weight factor")
	)
	flag.Parse()
	if err := run(*in, *system, *seed, *omega); err != nil {
		fmt.Fprintln(os.Stderr, "xtalksched:", err)
		os.Exit(1)
	}
}

func run(in, system string, seed int64, omega float64) error {
	var src []byte
	var err error
	if in == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	dev, err := device.New(device.SystemName(system), seed)
	if err != nil {
		return err
	}
	var c *circuit.Circuit
	if strings.Contains(string(src), "OPENQASM") {
		c, err = qasm.Parse(string(src))
	} else {
		c, err = circuit.ParseText(string(src), dev.Topo.NQubits)
	}
	if err != nil {
		return err
	}
	if c.NQubits > dev.Topo.NQubits {
		return fmt.Errorf("circuit needs %d qubits, device has %d", c.NQubits, dev.Topo.NQubits)
	}
	c = c.DecomposeSwaps()
	nd := core.NoiseDataFromDevice(dev, 3)
	cfg := core.DefaultXtalkConfig()
	cfg.Omega = omega
	for _, sched := range []core.Scheduler{core.SerialSched{}, core.ParSched{}, core.NewXtalkSched(nd, cfg)} {
		s, err := sched.Schedule(c, dev)
		if err != nil {
			return err
		}
		fmt.Println(s.Render())
		fmt.Printf("modeled cost (omega=%.2g): %.4f; crosstalk overlaps: %d; est. success: %.3f\n\n",
			omega, s.Cost(nd, omega), s.CrosstalkOverlapCount(nd), s.SuccessEstimate(nd))
	}
	xs, err := core.NewXtalkSched(nd, cfg).Schedule(c, dev)
	if err != nil {
		return err
	}
	fmt.Println("XtalkSched output circuit with barriers:")
	fmt.Println(core.InsertBarriers(xs))
	return nil
}
