// Command xtalksched schedules a circuit (textual gate-list or OpenQASM 2.0)
// onto a simulated device with SerialSched, ParSched and XtalkSched through
// the staged compilation pipeline, prints the three timelines, and reports
// the modeled error costs. The device is any spec the device package
// accepts: a preset or a generated topology.
//
// Usage:
//
//	xtalksched -in circuit.txt -device poughkeepsie -omega 0.5
//	xtalksched -device grid:5x8 -workload qaoa          # built-in workload
//	xtalksched -device heavyhex:27 -workload supremacy:80
//
// Input format (one gate per line):
//
//	h q0
//	cx q0,q1
//	swap q5,q10
//	measure q0
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"xtalk/internal/circuit"
	"xtalk/internal/core"
	"xtalk/internal/device"
	"xtalk/internal/pipeline"
	"xtalk/internal/qasm"
	"xtalk/internal/serve"
	"xtalk/internal/workloads"
)

func main() {
	var (
		in        = flag.String("in", "", "input circuit file (default: stdin unless -workload is set)")
		devSpec   = flag.String("device", "", "device spec: "+device.SpecGrammar)
		system    = flag.String("system", "poughkeepsie", "deprecated alias for -device")
		seed      = flag.Int64("seed", 1, "device seed")
		omega     = flag.Float64("omega", 0.5, "crosstalk weight factor")
		budget    = flag.Duration("budget", 0, "anytime SMT budget per schedule (0 = run to optimality)")
		stats     = flag.Bool("stats", false, "print per-stage pipeline statistics")
		partition = flag.Bool("partition", false, "use the conflict-partitioned scheduling engine (split the circuit into components and windows, one small SMT instance each)")
		window    = flag.Int("window", 0, "max two-qubit gates per window SMT instance (implies -partition; 0 = default cap)")
		portfolio = flag.Bool("portfolio", false, "race the SMT engine against the greedy heuristic under -budget and keep the best schedule")
		workload  = flag.String("workload", "", "generate a built-in circuit instead of reading input: qaoa[:K]|supremacy[:GATES]|swap[:A,B]")
		serveURL  = flag.String("serve", "", "compile via a running xtalkd daemon at this base URL (e.g. http://localhost:8077) instead of locally")
		doCertify = flag.Bool("certify", false, "run the independent schedule certifier on every local compile (violations fail the run)")
	)
	flag.Parse()
	spec := *devSpec
	if spec == "" {
		spec = *system
	}
	opts := runOpts{
		omega:     *omega,
		certify:   *doCertify,
		budget:    *budget,
		stats:     *stats,
		partition: *partition || *window > 0,
		window:    *window,
		portfolio: *portfolio,
	}
	var err error
	if *serveURL != "" {
		// The daemon compiles under its own configuration; warn when local
		// scheduling flags were set so they are not silently dropped.
		ignored := map[string]bool{"omega": true, "budget": true, "partition": true, "window": true, "portfolio": true, "certify": true}
		var dropped []string
		flag.Visit(func(f *flag.Flag) {
			if ignored[f.Name] {
				dropped = append(dropped, "-"+f.Name)
			}
		})
		if len(dropped) > 0 {
			fmt.Fprintf(os.Stderr, "xtalksched: %s ignored in -serve mode (the daemon's flags decide the compile config)\n",
				strings.Join(dropped, " "))
		}
		err = runRemote(*serveURL, *in, spec, *workload, *seed, opts)
	} else {
		err = run(*in, spec, *workload, *seed, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtalksched:", err)
		os.Exit(1)
	}
}

// runOpts bundles the scheduling knobs of the CLI.
type runOpts struct {
	omega     float64
	budget    time.Duration
	stats     bool
	certify   bool
	partition bool
	window    int
	portfolio bool
}

// buildWorkload generates a built-in benchmark circuit sized to the device.
func buildWorkload(dev *device.Device, workload string, seed int64) (*circuit.Circuit, error) {
	kind, arg, _ := strings.Cut(workload, ":")
	topo := dev.Topo
	switch kind {
	case "qaoa":
		k := 4
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("bad qaoa chain length %q", arg)
			}
			k = v
		}
		c, qubits, err := workloads.QAOAChainCircuit(topo, k, seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("QAOA on %s, chain %v\n\n", topo.Name, qubits)
		return c, nil
	case "supremacy":
		gates := 4 * topo.NQubits
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("bad supremacy gate count %q", arg)
			}
			gates = v
		}
		fmt.Printf("supremacy-style random circuit on %s, %d gates\n\n", topo.Name, gates)
		return workloads.SupremacyCircuit(topo, topo.NQubits, gates, seed)
	case "swap":
		a, b := -1, -1
		if arg != "" {
			as, bs, ok := strings.Cut(arg, ",")
			if !ok {
				return nil, fmt.Errorf("swap wants A,B qubits, got %q", arg)
			}
			var err error
			if a, err = strconv.Atoi(as); err != nil {
				return nil, fmt.Errorf("bad swap qubit %q", as)
			}
			if b, err = strconv.Atoi(bs); err != nil {
				return nil, fmt.Errorf("bad swap qubit %q", bs)
			}
			if a < 0 || b < 0 || a >= topo.NQubits || b >= topo.NQubits || a == b {
				return nil, fmt.Errorf("swap qubits %d,%d out of range for %d-qubit device", a, b, topo.NQubits)
			}
		} else {
			// Default: the most distant qubit pair on the device.
			best := -1
			for p := 0; p < topo.NQubits; p++ {
				for q := p + 1; q < topo.NQubits; q++ {
					if d := topo.Distance(p, q); d > best {
						best, a, b = d, p, q
					}
				}
			}
		}
		fmt.Printf("SWAP benchmark on %s, qubits %d -> %d\n\n", topo.Name, a, b)
		return workloads.SwapCircuit(topo, a, b)
	default:
		return nil, fmt.Errorf("unknown workload %q (want qaoa|supremacy|swap)", workload)
	}
}

// runRemote is the -serve client mode: it ships the circuit to a running
// xtalkd daemon, letting the service's content-addressed cache deduplicate
// the solve, and prints the returned artifact.
func runRemote(baseURL, in, spec, workload string, seed int64, opts runOpts) error {
	var source string
	if workload != "" {
		// Workload circuits are generated locally against the same device
		// spec the daemon will compile for, then shipped as OpenQASM.
		dev, err := device.NewFromSpec(spec, seed)
		if err != nil {
			return err
		}
		c, err := buildWorkload(dev, workload, seed)
		if err != nil {
			return err
		}
		source = qasm.Dump(c)
	} else {
		var src []byte
		var err error
		if in == "" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(in)
		}
		if err != nil {
			return err
		}
		source = string(src)
	}
	req := serve.CompileRequest{Source: source, Device: spec, Seed: &seed}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	resp, err := http.Post(baseURL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			if e.Line > 0 {
				return fmt.Errorf("daemon: %s (input line %d)", e.Error, e.Line)
			}
			return fmt.Errorf("daemon: %s", e.Error)
		}
		return fmt.Errorf("daemon: HTTP %d", resp.StatusCode)
	}
	var cr serve.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	status := "cold compile"
	switch {
	case cr.Tier == serve.TierMem:
		status = "cache hit (memory)"
	case cr.Tier == serve.TierDisk:
		status = "cache hit (disk)"
	case cr.Tier == serve.TierPeer:
		status = "served by peer"
		if cr.PeerTier != "" {
			status = fmt.Sprintf("served by peer (%s)", cr.PeerTier)
		}
	case cr.Cached:
		status = "cache hit"
	case cr.Collapsed:
		status = "collapsed onto in-flight compile"
	}
	fmt.Printf("%s [%s] on %s (seed %d, day %d): %s\n",
		cr.Scheduler, cr.Fingerprint[:12], cr.Device, cr.Seed, cr.Day, status)
	fmt.Printf("modeled cost: %.4f; makespan: %.0f ns; compile time: %.1f ms\n",
		cr.Cost, cr.MakespanNS, cr.CompileMS)
	if cr.Solve != "" {
		fmt.Printf("solver effort: %s\n", cr.Solve)
	}
	fmt.Println("\ncompiled circuit (OpenQASM, barriers enforce the schedule):")
	fmt.Println(cr.QASM)
	if opts.stats {
		st, err := http.Get(baseURL + "/stats")
		if err != nil {
			return err
		}
		defer st.Body.Close()
		var stats serve.Stats
		if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
			return err
		}
		fmt.Println("daemon statistics:")
		fmt.Print(stats.Text)
	}
	return nil
}

func run(in, spec, workload string, seed int64, opts runOpts) error {
	dev, err := device.NewFromSpec(spec, seed)
	if err != nil {
		return err
	}
	nd := pipeline.GroundTruthNoise(dev, 3)
	pomega := opts.omega
	if pomega == 0 {
		pomega = -1 // pipeline convention: negative selects the true omega=0 ablation
	}
	// Let the pipeline build the scheduler: Partition/Portfolio then share
	// its Workers-sized solve pool, so window solves run concurrently.
	p := pipeline.New(dev, pipeline.Config{
		Noise:          nd,
		Omega:          pomega,
		Budget:         opts.budget,
		Partition:      opts.partition,
		WindowGates:    opts.window,
		Portfolio:      opts.portfolio,
		DecomposeSwaps: true,
		Certify:        opts.certify,
	})
	var reqs []pipeline.Request
	if workload != "" {
		c, err := buildWorkload(dev, workload, seed)
		if err != nil {
			return err
		}
		reqs = []pipeline.Request{
			{Tag: "serial", Circuit: c, Scheduler: core.SerialSched{}},
			{Tag: "par", Circuit: c, Scheduler: core.ParSched{}},
			{Tag: "xtalk", Circuit: c},
		}
	} else {
		var src []byte
		if in == "" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(in)
		}
		if err != nil {
			return err
		}
		reqs = []pipeline.Request{
			{Tag: "serial", Source: string(src), Scheduler: core.SerialSched{}},
			{Tag: "par", Source: string(src), Scheduler: core.ParSched{}},
			{Tag: "xtalk", Source: string(src)},
		}
	}
	results := p.Batch(context.Background(), reqs)
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Tag, r.Err)
		}
		fmt.Println(r.Schedule.Render())
		fmt.Printf("modeled cost (omega=%.2g): %.4f; crosstalk overlaps: %d; est. success: %.3f\n",
			opts.omega, r.Schedule.Cost(nd, opts.omega), r.Schedule.CrosstalkOverlapCount(nd), r.Schedule.SuccessEstimate(nd))
		if st := r.Schedule.Stats; st.Windows > 0 {
			// Solver effort: window counts, the SAT core's
			// decision/conflict counters, and the theory-tier split
			// (difference-logic vs exact-simplex work).
			fmt.Printf("solver effort: %s (schedule stage: %v)\n", st, r.StageElapsed("schedule").Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("XtalkSched output circuit with barriers:")
	fmt.Println(results[2].Barriered)
	if opts.stats {
		fmt.Println("pipeline stage statistics:")
		fmt.Print(p.StatsString())
	}
	return nil
}
