// Command xtalksched schedules a circuit (textual gate-list or OpenQASM 2.0)
// onto a simulated device with SerialSched, ParSched and XtalkSched through
// the staged compilation pipeline, prints the three timelines, and reports
// the modeled error costs.
//
// Usage:
//
//	xtalksched -in circuit.txt -system poughkeepsie -omega 0.5
//
// Input format (one gate per line):
//
//	h q0
//	cx q0,q1
//	swap q5,q10
//	measure q0
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"xtalk/internal/core"
	"xtalk/internal/device"
	"xtalk/internal/pipeline"
)

func main() {
	var (
		in     = flag.String("in", "", "input circuit file (default: stdin)")
		system = flag.String("system", "poughkeepsie", "poughkeepsie|johannesburg|boeblingen")
		seed   = flag.Int64("seed", 1, "device seed")
		omega  = flag.Float64("omega", 0.5, "crosstalk weight factor")
		budget = flag.Duration("budget", 0, "anytime SMT budget per schedule (0 = run to optimality)")
		stats  = flag.Bool("stats", false, "print per-stage pipeline statistics")
	)
	flag.Parse()
	if err := run(*in, *system, *seed, *omega, *budget, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "xtalksched:", err)
		os.Exit(1)
	}
}

func run(in, system string, seed int64, omega float64, budget time.Duration, stats bool) error {
	var src []byte
	var err error
	if in == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	dev, err := device.New(device.SystemName(system), seed)
	if err != nil {
		return err
	}
	nd := pipeline.GroundTruthNoise(dev, 3)
	xc := core.DefaultXtalkConfig()
	xc.Omega = omega
	xc.Timeout = budget
	p := pipeline.New(dev, pipeline.Config{
		Noise:          nd,
		Scheduler:      core.NewXtalkSched(nd, xc),
		DecomposeSwaps: true,
	})
	results := p.Batch(context.Background(), []pipeline.Request{
		{Tag: "serial", Source: string(src), Scheduler: core.SerialSched{}},
		{Tag: "par", Source: string(src), Scheduler: core.ParSched{}},
		{Tag: "xtalk", Source: string(src)},
	})
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Tag, r.Err)
		}
		fmt.Println(r.Schedule.Render())
		fmt.Printf("modeled cost (omega=%.2g): %.4f; crosstalk overlaps: %d; est. success: %.3f\n\n",
			omega, r.Schedule.Cost(nd, omega), r.Schedule.CrosstalkOverlapCount(nd), r.Schedule.SuccessEstimate(nd))
	}
	fmt.Println("XtalkSched output circuit with barriers:")
	fmt.Println(results[2].Barriered)
	if stats {
		fmt.Println("pipeline stage statistics:")
		fmt.Print(p.StatsString())
	}
	return nil
}
