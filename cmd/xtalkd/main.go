// Command xtalkd is the crosstalk-aware compilation daemon: the staged
// pipeline served over HTTP with a content-addressed schedule cache in
// front of it. Identical submissions — same circuit up to reordering of
// independent gates, same device/seed/day, same compile knobs — are
// deduplicated: the first pays the SMT solve, the rest are cache hits, and
// concurrent identical requests collapse onto a single in-flight solve.
//
// With -store the cache gains a persistent disk tier: artifacts spill to
// checksummed files, and a restarted daemon serves previously compiled
// fingerprints without invoking the solver. With -peers several daemons
// form a fleet: fingerprints are routed over a consistent-hash ring and
// non-owners proxy to the owner (falling back to local compute if the
// owner is unreachable).
//
// Usage:
//
//	xtalkd -addr :8077 -device heavyhex:27 -partition -budget 2s
//	xtalkd -addr :8077 -store /var/lib/xtalkd -store-mb 512
//	xtalkd -addr :8077 -self hostA:8077 -peers hostB:8077,hostC:8077 -store /var/lib/xtalkd
//
// Failure domains are first-class: peer proxying runs behind per-peer
// circuit breakers with bounded retries, client deadlines (deadline_ms)
// propagate into the solver budget, a bounded admission queue sheds load
// with 429/503 + Retry-After instead of queueing unboundedly, and SIGTERM
// triggers a graceful drain (stop admitting, finish in-flight, flush the
// store). -faults installs the deterministic fault-injection rig
// (internal/faultinject) for chaos testing.
//
// API (see internal/serve):
//
//	POST /compile   {"source": "<OpenQASM or gate-list>", "device": "...", "day": N}
//	                (a non-JSON body is treated as the raw source)
//	GET  /epoch     current calibration epoch {device, seed, day}
//	POST /epoch     flip the epoch, e.g. {"day": 2} on calibration rollover
//	GET  /stats     cache + tier + pipeline + breaker statistics
//	GET  /healthz   liveness (stays green through a drain)
//	GET  /readyz    readiness (503 once draining starts)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xtalk/internal/device"
	"xtalk/internal/faultinject"
	"xtalk/internal/pipeline"
	"xtalk/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		devSpec   = flag.String("device", "heavyhex:27", "default device spec: "+device.SpecGrammar)
		seed      = flag.Int64("seed", 1, "default device seed")
		day       = flag.Int("day", 0, "default calibration day")
		omega     = flag.Float64("omega", 0.5, "crosstalk weight factor")
		budget    = flag.Duration("budget", 2*time.Second, "anytime SMT budget per schedule (0 = run to optimality)")
		partition = flag.Bool("partition", true, "use the conflict-partitioned scheduling engine")
		window    = flag.Int("window", 0, "max two-qubit gates per window SMT instance (0 = default cap)")
		portfolio = flag.Bool("portfolio", false, "race the SMT engine against the greedy heuristic under -budget")
		route     = flag.Bool("route", false, "route circuits onto the device topology before scheduling")
		decompose = flag.Bool("decompose", true, "decompose SWAP gates into CNOTs before scheduling")
		cacheMB   = flag.Int64("cache-mb", 64, "in-memory artifact cache size bound in MiB")
		cacheKB   = flag.Int64("cache-kb", 0, "in-memory cache bound in KiB (overrides -cache-mb; testing/bench knob)")
		store     = flag.String("store", "", "persistent artifact store directory (empty = memory-only)")
		storeMB   = flag.Int64("store-mb", 512, "disk store size bound in MiB")
		self      = flag.String("self", "", "this daemon's advertised host:port ring identity (required with -peers)")
		peers     = flag.String("peers", "", "comma-separated peer daemon host:port list (enables consistent-hash routing)")
		maxBodyMB = flag.Int64("max-body-mb", 16, "max /compile request body size in MiB")
		readTO    = flag.Duration("read-timeout", time.Minute, "HTTP read timeout")
		writeTO   = flag.Duration("write-timeout", 10*time.Minute, "HTTP write timeout (bounds one cold compile + response)")
		idleTO    = flag.Duration("idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
		queue     = flag.Int("queue", 0, "max concurrent cold compilations (0 = GOMAXPROCS)")
		shedQueue = flag.Int("shed-queue", 0, "max cold compilations waiting behind the -queue slots before load is shed with 429 (0 = 4x -queue, negative = no waiting room)")
		workers   = flag.Int("workers", 0, "SMT solve pool width per device pipeline (0 = GOMAXPROCS)")
		doCertify = flag.Bool("certify", false, "run the independent schedule certifier on every compile (violations fail the request)")
		peerTO    = flag.Duration("peer-timeout", serve.DefaultPeerTimeout, "per-attempt peer proxy timeout (dial/headers/body)")
		peerRetry = flag.Int("peer-retries", 1, "extra peer proxy attempts after a retryable failure, with jittered backoff (0 = none)")
		brkFails  = flag.Int("breaker-failures", serve.DefaultBreakerFailures, "consecutive peer failures before the circuit breaker trips open")
		brkCool   = flag.Duration("breaker-cooldown", serve.DefaultBreakerCooldown, "breaker open interval before the first half-open probe (doubles while the peer stays down)")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM: max wait for in-flight requests before forcing shutdown")
		faults    = flag.String("faults", "", "deterministic fault-injection plan, e.g. seed=7,solve.delay=200ms,peer.blackhole=1 (see internal/faultinject)")
		respMB    = flag.Int64("resp-cache-mb", serve.DefaultRespCacheBytes>>20, "encoded-response cache size bound in MiB (negative = disable the response tier)")
		idleConns = flag.Int("peer-idle-conns", serve.DefaultPeerIdleConns, "kept-alive connections per ring peer in the proxy/transfer transport")
		noPrewarm = flag.Bool("no-prewarm", false, "disable the join/epoch-flip artifact prewarm engine")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
		quiet     = flag.Bool("quiet", false, "suppress the per-request access log (benchmark runs: formatting 6k lines/s costs real throughput)")
	)
	flag.Parse()
	cacheBytes := *cacheMB << 20
	if *cacheKB > 0 {
		cacheBytes = *cacheKB << 10
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	// CLI convention: -peer-retries 0 means none; the Config convention
	// reserves 0 for the default and negative for none.
	cfgRetries := *peerRetry
	if cfgRetries <= 0 {
		cfgRetries = -1
	}
	cfg := serve.Config{
		Spec: *devSpec,
		Seed: *seed,
		Day:  *day,
		Pipeline: pipeline.Config{
			Omega:          cliOmega(*omega),
			Budget:         *budget,
			Partition:      *partition,
			WindowGates:    *window,
			Portfolio:      *portfolio,
			Route:          *route,
			DecomposeSwaps: *decompose,
			Workers:        *workers,
			Certify:        *doCertify,
		},
		CacheBytes:      cacheBytes,
		StoreDir:        *store,
		StoreBytes:      *storeMB << 20,
		Self:            *self,
		Peers:           peerList,
		MaxBodyBytes:    *maxBodyMB << 20,
		MaxConcurrent:   *queue,
		MaxQueue:        *shedQueue,
		PeerTimeout:     *peerTO,
		PeerRetries:     cfgRetries,
		BreakerFailures: *brkFails,
		BreakerCooldown: *brkCool,
		RespCacheBytes:  respCacheBytes(*respMB),
		PeerIdleConns:   *idleConns,
		DisablePrewarm:  *noPrewarm,
	}
	var injector *faultinject.Injector
	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtalkd:", err)
			os.Exit(1)
		}
		injector = faultinject.New(plan)
		injector.Apply(&cfg)
		log.Printf("xtalkd: fault injection armed: %s", *faults)
	}
	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on http.DefaultServeMux at
		// import time; the serving mux is separate, so profiling stays off
		// the public listener and can bind localhost-only.
		go func() {
			log.Printf("xtalkd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("xtalkd: pprof listener: %v", err)
			}
		}()
	}
	if err := run(*addr, httpTimeouts{read: *readTO, write: *writeTO, idle: *idleTO, drain: *drainTO}, cfg, injector, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkd:", err)
		os.Exit(1)
	}
}

// respCacheBytes maps the CLI convention (negative = off, 0 = default) onto
// the Config convention (negative = off, 0 = default — but spelled in MiB).
func respCacheBytes(mb int64) int64 {
	if mb < 0 {
		return -1
	}
	return mb << 20
}

// cliOmega maps the CLI convention (0 means omega 0) onto the pipeline
// convention (0 means paper default, negative means true 0).
func cliOmega(omega float64) float64 {
	if omega == 0 {
		return -1
	}
	return omega
}

// httpTimeouts carries the http.Server deadlines: a daemon exposed to a
// fleet must not let a stalled or trickling client pin a connection (and
// its goroutine) forever. drain bounds the SIGTERM graceful drain.
type httpTimeouts struct {
	read, write, idle, drain time.Duration
}

func run(addr string, to httpTimeouts, cfg serve.Config, injector *faultinject.Injector, quiet bool) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	handler := s.Handler()
	if !quiet {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       to.read,
		WriteTimeout:      to.write,
		IdleTimeout:       to.idle,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("xtalkd: serving %s (seed %d, day %d) on %s", cfg.Spec, cfg.Seed, cfg.Day, addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful drain, in order: stop admitting (/readyz flips to 503, new
	// compiles shed), let every in-flight request finish and the store sync,
	// then close the listener, and only then cancel the lifecycle context —
	// a solve that was admitted before the signal always completes.
	log.Printf("xtalkd: draining (bound %v)", to.drain)
	s.BeginDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), to.drain)
	defer cancelDrain()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("xtalkd: drain incomplete: %v", err)
	} else {
		log.Printf("xtalkd: drain complete: zero in-flight requests, store flushed")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if injector != nil {
		log.Printf("xtalkd: injected faults: %s", injector.Stats())
	}
	log.Printf("xtalkd: bye")
	return nil
}

// logRequests is a one-line access log: the daemon's only observability
// besides /stats, kept deliberately tiny.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		if r.URL.Path != "/healthz" {
			log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(t0).Round(time.Microsecond))
		}
	})
}
