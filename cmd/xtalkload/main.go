// Command xtalkload is the trace-replay load generator for xtalkd: it
// builds a zoo of workload circuits (SWAP / QAOA / Hidden Shift /
// supremacy-style, sized to each target device), replays Zipf-repeated
// submissions against a running daemon with configurable concurrency and
// day churn, and reports the serving-latency distribution split by hit
// tier (mem / disk / peer / cold) together with hit rate, collapse counts
// and solver-queue saturation sampled from /stats.
//
// Usage:
//
//	xtalkload -addr 127.0.0.1:8077 -duration 10s -warmup 2s -c 8 -out BENCH_serve.json
//	xtalkload -addr 127.0.0.1:8077 -n 50 -devices heavyhex:27 -days 2 -zipf 1.3
//	xtalkload -addr 127.0.0.1:8077 -n 40 -chaos -require-avail 1.0
//
// The output JSON (BENCH_serve.json by convention) carries per-tier
// p50/p95/p99, so a cold SMT solve and a disk hit on the same fingerprint
// are never averaged into one meaningless number. Errors are split by class
// (4xx / 5xx / transport) so chaos runs are measurable.
//
// -chaos turns the generator into an availability prober for fault-injected
// fleets: retryable failures (429/503/5xx/transport) are retried with
// backoff honoring Retry-After, the report gains retry/availability fields,
// and -require-avail N fails the run (exit 1) when the fraction of trace
// items that eventually succeeded falls below N.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xtalk/internal/device"
	"xtalk/internal/qasm"
	"xtalk/internal/serve"
	"xtalk/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8077", "daemon address (host:port)")
		devices  = flag.String("devices", "poughkeepsie", "comma-separated device specs to spread the trace over")
		seed     = flag.Int64("seed", 1, "device calibration seed (also seeds the trace RNG)")
		days     = flag.Int("days", 1, "calibration-day churn: jobs spread over days 0..days-1")
		mix      = flag.String("mix", "swap,qaoa,hs", "workload mix: any of swap,qaoa,hs,sup")
		jobs     = flag.Int("jobs", 24, "distinct trace jobs (circuit x device x day) in the zoo")
		zipfS    = flag.Float64("zipf", 1.2, "Zipf exponent for repeated submissions (>1; larger = hotter head)")
		conc     = flag.Int("c", 8, "concurrent clients")
		n        = flag.Int("n", 0, "total requests (0 = run for -duration)")
		duration = flag.Duration("duration", 10*time.Second, "run length when -n is 0")
		warmup   = flag.Duration("warmup", 0, "ramp-up window excluded from percentile/throughput accounting (runs before -duration)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request timeout")
		out      = flag.String("out", "BENCH_serve.json", "result JSON path (- for stdout)")
		chaos    = flag.Bool("chaos", false, "availability-probe mode: retry retryable failures (429/503/5xx/transport) with backoff, honoring Retry-After")
		retries  = flag.Int("chaos-retries", 8, "max retries per trace item in -chaos mode")
		reqAvail = flag.Float64("require-avail", 0, "minimum availability (eventually-succeeded fraction); below it the run exits 1")
	)
	flag.Parse()
	opts := loadOpts{
		devCSV: *devices, mixCSV: *mix, seed: *seed, days: *days,
		jobCount: *jobs, zipfS: *zipfS, conc: *conc, n: *n,
		duration: *duration, warmup: *warmup, timeout: *timeout, out: *out,
		chaos: *chaos, chaosRetries: *retries, requireAvail: *reqAvail,
	}
	if err := run(*addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkload:", err)
		os.Exit(1)
	}
}

// loadOpts bundles the CLI knobs run consumes.
type loadOpts struct {
	devCSV, mixCSV string
	seed           int64
	days, jobCount int
	zipfS          float64
	conc, n        int
	duration       time.Duration
	warmup         time.Duration
	timeout        time.Duration
	out            string
	chaos          bool
	chaosRetries   int
	requireAvail   float64
}

// job is one entry of the trace zoo: a source program pinned to an explicit
// device/seed/day triple (explicit so the daemon's default epoch cannot
// skew the trace).
type job struct {
	kind string
	req  serve.CompileRequest
	// body is the request pre-marshaled once at zoo-build time: the hot
	// submit loop must measure the daemon, not the generator's JSON encoder.
	body []byte
}

// buildZoo generates count jobs round-robined over devices, workload kinds
// and days. Generation is deterministic in (seed, devices, mix, days,
// count): two xtalkload runs replay the same trace.
func buildZoo(devSpecs, kinds []string, seed int64, days, count int) ([]job, error) {
	type devEntry struct {
		spec string
		dev  *device.Device
	}
	devs := make([]devEntry, 0, len(devSpecs))
	for _, spec := range devSpecs {
		d, err := device.NewFromSpecForDay(spec, seed, 0)
		if err != nil {
			return nil, fmt.Errorf("device %q: %w", spec, err)
		}
		devs = append(devs, devEntry{spec, d})
	}
	zoo := make([]job, 0, count)
	for i := 0; len(zoo) < count; i++ {
		de := devs[i%len(devs)]
		kind := kinds[(i/len(devs))%len(kinds)]
		day := (i / (len(devs) * len(kinds))) % days
		topo := de.dev.Topo
		var (
			circSrc string
			err     error
		)
		switch kind {
		case "swap":
			// Stretch the SWAP distance with the variant index for distinct
			// fingerprints.
			b := 1 + (i/2)%(topo.NQubits-1)
			c, e := workloads.SwapCircuit(topo, 0, b)
			if e != nil {
				err = e
			} else {
				circSrc = qasm.Dump(c)
			}
		case "qaoa":
			c, _, e := workloads.QAOAChainCircuit(topo, 4, seed+int64(i))
			if e != nil {
				err = e
			} else {
				circSrc = qasm.Dump(c)
			}
		case "hs":
			chain, e := workloads.Chain(topo, 4)
			if e != nil {
				err = e
				break
			}
			c, _, e := workloads.HiddenShiftCircuit(topo, chain, uint(i%16), i%2 == 1)
			if e != nil {
				err = e
			} else {
				circSrc = qasm.Dump(c)
			}
		case "sup":
			nq := topo.NQubits
			if nq > 12 {
				nq = 12
			}
			c, e := workloads.SupremacyCircuit(topo, nq, 40, seed+int64(i))
			if e != nil {
				err = e
			} else {
				circSrc = qasm.Dump(c)
			}
		default:
			return nil, fmt.Errorf("unknown workload kind %q (want swap,qaoa,hs,sup)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", kind, de.spec, err)
		}
		s, d := seed, day
		zoo = append(zoo, job{kind: kind, req: serve.CompileRequest{
			Source: circSrc,
			Device: de.spec,
			Seed:   &s,
			Day:    &d,
		}})
	}
	return zoo, nil
}

// sample is one completed request; done timestamps it so a ramp-up window
// can be carved off after the fact.
type sample struct {
	tier      string
	peerTier  string
	latency   time.Duration
	done      time.Time
	collapsed bool
	degraded  bool
}

// TierReport is the latency distribution of one hit tier.
type TierReport struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// SaturationReport summarizes the solver admission queue over the run,
// sampled from GET /stats: MeanInflight near MaxConcurrent means the
// daemon ran solver-bound; SaturatedFrac is the fraction of samples with
// every solver slot busy.
type SaturationReport struct {
	Samples       int     `json:"samples"`
	MaxConcurrent int     `json:"max_concurrent"`
	MeanInflight  float64 `json:"mean_inflight"`
	MaxInflight   int64   `json:"max_inflight"`
	SaturatedFrac float64 `json:"saturated_frac"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	Addr      string  `json:"addr"`
	Devices   string  `json:"devices"`
	Mix       string  `json:"mix"`
	Jobs      int     `json:"jobs"`
	Days      int     `json:"days"`
	Zipf      float64 `json:"zipf"`
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_s"`
	// WarmupS/WarmupRequests record the ramp-up split: requests finishing
	// inside the first WarmupS seconds are excluded from Requests, every
	// percentile, and Throughput (whose clock starts after the warmup).
	WarmupS        float64 `json:"warmup_s,omitempty"`
	WarmupRequests int     `json:"warmup_requests,omitempty"`
	Requests       int     `json:"requests"`
	// Errors is the total error occurrences across all attempts, split by
	// class below: client-side rejections (4xx, includes shed 429s),
	// server-side failures (5xx, includes draining 503s), and transport
	// errors (connect/timeout/reset — the daemon never answered).
	Errors          int64 `json:"errors"`
	Errors4xx       int64 `json:"errors_4xx"`
	Errors5xx       int64 `json:"errors_5xx"`
	ErrorsTransport int64 `json:"errors_transport"`
	// ErrorRate is the fraction of trace items that never produced a
	// successful response (after retries in -chaos mode); Availability is
	// its complement — the chaos gate.
	ErrorRate    float64 `json:"error_rate"`
	Availability float64 `json:"availability"`
	// Chaos mode provenance: whether retries were on, how many fired, how
	// many items ultimately failed, and how many responses carried the
	// degraded (deadline-capped solve) flag.
	Chaos      bool    `json:"chaos,omitempty"`
	Retries    int64   `json:"retries,omitempty"`
	Failed     int64   `json:"failed"`
	Degraded   int     `json:"degraded"`
	Throughput float64 `json:"requests_per_s"`
	// HitRate counts requests served without any solver work anywhere in
	// the fleet: mem and disk hits locally, plus peer responses the owner
	// itself served from a cache tier.
	HitRate   float64               `json:"hit_rate"`
	Collapsed int                   `json:"collapsed"`
	Tiers     map[string]TierReport `json:"tiers"`
	// PeerServedBy splits peer-tier requests by the tier the owning daemon
	// served from.
	PeerServedBy map[string]int   `json:"peer_served_by,omitempty"`
	Saturation   SaturationReport `json:"saturation"`
	// DaemonStats is the target daemon's /stats snapshot at the end of the
	// run (counters include any traffic before the run).
	DaemonStats *serve.Stats `json:"daemon_stats,omitempty"`
}

func run(addr string, o loadOpts) error {
	if o.days < 1 {
		o.days = 1
	}
	devSpecs := splitCSV(o.devCSV)
	kinds := splitCSV(o.mixCSV)
	if len(devSpecs) == 0 || len(kinds) == 0 {
		return fmt.Errorf("need at least one device and one workload kind")
	}
	zoo, err := buildZoo(devSpecs, kinds, o.seed, o.days, o.jobCount)
	if err != nil {
		return err
	}
	for i := range zoo {
		if zoo[i].body, err = json.Marshal(zoo[i].req); err != nil {
			return err
		}
	}
	base := "http://" + strings.TrimPrefix(addr, "http://")
	// The default transport keeps only 2 idle connections per host; above
	// that concurrency every request pays a fresh dial and the generator
	// measures its own TCP handshakes. Size the pool to the client count.
	client := &http.Client{Timeout: o.timeout, Transport: &http.Transport{
		MaxIdleConns:        2 * o.conc,
		MaxIdleConnsPerHost: o.conc + 1, // workers + the /stats sampler
	}}

	// The Zipf stream is drawn up front under one RNG so the trace is
	// deterministic regardless of worker interleaving.
	rng := rand.New(rand.NewSource(o.seed))
	zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(len(zoo)-1))
	deadline := time.Now().Add(o.warmup + o.duration)
	next := make(chan int, o.conc)
	go func() {
		defer close(next)
		for i := 0; o.n == 0 || i < o.n; i++ {
			if o.n == 0 && time.Now().After(deadline) {
				return
			}
			next <- int(zipf.Uint64())
		}
	}()

	// Saturation sampler: poll /stats while the trace runs.
	satStop := make(chan struct{})
	var satMu sync.Mutex
	var satSamples []serve.Stats
	go func() {
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-satStop:
				return
			case <-tick.C:
				if st, err := fetchStats(client, base); err == nil {
					satMu.Lock()
					satSamples = append(satSamples, *st)
					satMu.Unlock()
				}
			}
		}
	}()

	var (
		mu       sync.Mutex
		samples  []sample
		errs4xx  atomic.Int64
		errs5xx  atomic.Int64
		errsConn atomic.Int64
		retried  atomic.Int64
		failed   atomic.Int64
		wg       sync.WaitGroup
	)
	record := func(err error) {
		var he *httpError
		switch {
		case errors.As(err, &he) && he.status >= 400 && he.status < 500:
			errs4xx.Add(1)
		case errors.As(err, &he):
			errs5xx.Add(1)
		default:
			errsConn.Add(1)
		}
	}
	t0 := time.Now()
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				attempts := 1
				if o.chaos {
					attempts = 1 + o.chaosRetries
				}
				var (
					s   sample
					err error
				)
				for a := 0; a < attempts; a++ {
					if a > 0 {
						retried.Add(1)
					}
					s, err = submit(client, base, zoo[idx].body)
					if err == nil {
						break
					}
					record(err)
					if !o.chaos || !retryable(err) {
						break
					}
					time.Sleep(retryDelay(err, a))
				}
				if err != nil {
					failed.Add(1)
					continue
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(satStop)

	// Carve the ramp-up off the front: requests that completed inside the
	// warmup window (connection establishment, cache fill, breaker settling)
	// are tallied but excluded from every percentile and from throughput,
	// whose clock starts at the warmup boundary.
	measured := samples
	warmupCount := 0
	if o.warmup > 0 {
		warmEnd := t0.Add(o.warmup)
		measured = samples[:0:0]
		for _, s := range samples {
			if s.done.Before(warmEnd) {
				warmupCount++
				continue
			}
			measured = append(measured, s)
		}
		if elapsed -= o.warmup; elapsed < 0 {
			elapsed = 0
		}
	}
	rep := buildReport(measured, satSamples, elapsed)
	rep.WarmupS = o.warmup.Seconds()
	rep.WarmupRequests = warmupCount
	rep.Addr = addr
	rep.Devices = o.devCSV
	rep.Mix = o.mixCSV
	rep.Jobs = len(zoo)
	rep.Days = o.days
	rep.Zipf = o.zipfS
	rep.Clients = o.conc
	rep.Errors4xx = errs4xx.Load()
	rep.Errors5xx = errs5xx.Load()
	rep.ErrorsTransport = errsConn.Load()
	rep.Errors = rep.Errors4xx + rep.Errors5xx + rep.ErrorsTransport
	rep.Chaos = o.chaos
	rep.Retries = retried.Load()
	rep.Failed = failed.Load()
	if total := int64(rep.Requests) + rep.Failed; total > 0 {
		rep.ErrorRate = float64(rep.Failed) / float64(total)
		rep.Availability = 1 - rep.ErrorRate
	}
	if st, err := fetchStats(client, base); err == nil {
		st.Text = "" // the human rendering has no place in a bench artifact
		rep.DaemonStats = st
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if o.out == "-" {
		_, err = os.Stdout.Write(doc)
	} else {
		err = os.WriteFile(o.out, doc, 0o644)
	}
	if err != nil {
		return err
	}
	if o.out != "-" {
		fmt.Printf("xtalkload: %d requests in %.1fs (%.1f req/s), hit rate %.2f, %d errors (%d 4xx / %d 5xx / %d transport) -> %s\n",
			rep.Requests, rep.DurationS, rep.Throughput, rep.HitRate,
			rep.Errors, rep.Errors4xx, rep.Errors5xx, rep.ErrorsTransport, o.out)
		if o.warmup > 0 {
			fmt.Printf("  warmup: %.1fs ramp-up, %d requests excluded from the accounting above\n",
				rep.WarmupS, rep.WarmupRequests)
		}
		if o.chaos {
			fmt.Printf("  chaos: availability=%.3f retries=%d failed=%d degraded=%d\n",
				rep.Availability, rep.Retries, rep.Failed, rep.Degraded)
		}
		for _, tier := range []string{serve.TierMem, serve.TierDisk, serve.TierPeer, serve.TierCold} {
			if tr, ok := rep.Tiers[tier]; ok {
				fmt.Printf("  %-4s n=%-5d p50=%.2fms p95=%.2fms p99=%.2fms\n", tier, tr.Count, tr.P50MS, tr.P95MS, tr.P99MS)
			}
		}
	}
	if o.requireAvail > 0 && rep.Availability < o.requireAvail {
		return fmt.Errorf("availability %.3f below required %.3f (%d/%d items failed)",
			rep.Availability, o.requireAvail, rep.Failed, int64(rep.Requests)+rep.Failed)
	}
	return nil
}

// httpError is a non-200 daemon answer, preserved with its status and
// Retry-After hint for classification and chaos-mode backoff.
type httpError struct {
	status     int
	retryAfter time.Duration
	body       string
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.body) }

// retryable reports whether a chaos-mode retry can help: shed (429),
// draining/unavailable (503), other 5xx and transport errors can clear;
// remaining 4xx are deterministic rejections.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status == http.StatusTooManyRequests || he.status >= 500
	}
	return true // transport error
}

// retryDelay picks the wait before retry attempt+1: the server's Retry-After
// when present, else 50ms doubling per attempt, capped at 1s.
func retryDelay(err error, attempt int) time.Duration {
	var he *httpError
	if errors.As(err, &he) && he.retryAfter > 0 {
		return he.retryAfter
	}
	d := 50 * time.Millisecond << attempt
	if d > time.Second {
		d = time.Second
	}
	return d
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// bodyPool recycles response-read buffers across the submit hot loop: a
// compile response runs to tens of KiB of QASM, and re-growing a fresh
// buffer per request would make the generator the allocation hot spot.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func submit(client *http.Client, base string, body []byte) (sample, error) {
	t0 := time.Now()
	resp, err := client.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Status first, then body: an error reply carries an ErrorResponse,
		// not a CompileResponse, and must never be decoded as one.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		he := &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				he.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return sample{}, he
	}
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return sample{}, err
	}
	// The latency clock stops at last byte received: parsing the reply is
	// generator overhead, not serving latency, so it runs off the clock and
	// against a trimmed view that skips materializing the QASM payload.
	lat, done := time.Since(t0), time.Now()
	var cr struct {
		Tier      string `json:"tier"`
		PeerTier  string `json:"peer_tier"`
		Collapsed bool   `json:"collapsed"`
		Degraded  bool   `json:"degraded"`
	}
	if err := json.Unmarshal(buf.Bytes(), &cr); err != nil {
		return sample{}, err
	}
	return sample{tier: cr.Tier, peerTier: cr.PeerTier, latency: lat, done: done,
		collapsed: cr.Collapsed, degraded: cr.Degraded}, nil
}

func fetchStats(client *http.Client, base string) (*serve.Stats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func buildReport(samples []sample, satSamples []serve.Stats, elapsed time.Duration) *Report {
	rep := &Report{
		DurationS:    elapsed.Seconds(),
		Requests:     len(samples),
		Tiers:        map[string]TierReport{},
		PeerServedBy: map[string]int{},
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(samples)) / elapsed.Seconds()
	}
	byTier := map[string][]time.Duration{}
	hits := 0
	for _, s := range samples {
		byTier[s.tier] = append(byTier[s.tier], s.latency)
		if s.collapsed {
			rep.Collapsed++
		}
		if s.degraded {
			rep.Degraded++
		}
		switch s.tier {
		case serve.TierMem, serve.TierDisk:
			hits++
		case serve.TierPeer:
			rep.PeerServedBy[s.peerTier]++
			if s.peerTier != serve.TierCold {
				hits++
			}
		}
	}
	if len(samples) > 0 {
		rep.HitRate = float64(hits) / float64(len(samples))
	}
	for tier, lats := range byTier {
		rep.Tiers[tier] = tierReport(lats)
	}
	sat := SaturationReport{Samples: len(satSamples)}
	saturated := 0
	var sum float64
	for _, st := range satSamples {
		sat.MaxConcurrent = st.MaxConcurrent
		sum += float64(st.Inflight)
		if st.Inflight > sat.MaxInflight {
			sat.MaxInflight = st.Inflight
		}
		if st.MaxConcurrent > 0 && st.Inflight >= int64(st.MaxConcurrent) {
			saturated++
		}
	}
	if len(satSamples) > 0 {
		sat.MeanInflight = sum / float64(len(satSamples))
		sat.SaturatedFrac = float64(saturated) / float64(len(satSamples))
	}
	rep.Saturation = sat
	return rep
}

func tierReport(lats []time.Duration) TierReport {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return ms(lats[i])
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	tr := TierReport{
		Count: len(lats),
		P50MS: pct(0.50),
		P95MS: pct(0.95),
		P99MS: pct(0.99),
		MaxMS: ms(lats[len(lats)-1]),
	}
	if len(lats) > 0 {
		tr.MeanMS = ms(sum) / float64(len(lats))
	}
	return tr
}
