// Command xtalkchar runs a crosstalk characterization campaign on a
// simulated device and prints the measurement plan, machine-time estimate,
// measured conditional error rates, and detected high-crosstalk pairs.
//
// Usage:
//
//	xtalkchar -system poughkeepsie -policy one-hop+binpack
package main

import (
	"flag"
	"fmt"
	"os"

	"xtalk/internal/characterize"
	"xtalk/internal/device"
	"xtalk/internal/rb"
)

func main() {
	var (
		system    = flag.String("system", "poughkeepsie", "poughkeepsie|johannesburg|boeblingen")
		policy    = flag.String("policy", "one-hop+binpack", "all-pairs|one-hop|one-hop+binpack|high-crosstalk-only")
		seed      = flag.Int64("seed", 1, "device + experiment seed")
		day       = flag.Int("day", 0, "calibration day (drift model)")
		threshold = flag.Float64("threshold", 3, "high-crosstalk detection ratio")
	)
	flag.Parse()
	if err := run(*system, *policy, *seed, *day, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkchar:", err)
		os.Exit(1)
	}
}

func run(system, policyName string, seed int64, day int, threshold float64) error {
	dev, err := device.NewForDay(device.SystemName(system), seed, day)
	if err != nil {
		return err
	}
	var policy characterize.Policy
	switch policyName {
	case "all-pairs":
		policy = characterize.AllPairs
	case "one-hop":
		policy = characterize.OneHop
	case "one-hop+binpack":
		policy = characterize.OneHopBinPacked
	case "high-crosstalk-only":
		policy = characterize.HighCrosstalkOnly
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	var highPairs []device.EdgePair
	if policy == characterize.HighCrosstalkOnly {
		// Seed the daily refresh from ground truth (in practice: from the
		// last full campaign).
		highPairs = dev.Cal.HighCrosstalkPairs(threshold)
	}
	cfg := rb.DefaultConfig()
	cfg.Seed = seed
	rep, err := characterize.Run(dev, policy, highPairs, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s, day %d, policy %s\n", dev.Topo.Name, day, policy)
	fmt.Printf("experiments: %d batches covering %d pairs; modeled machine time %s\n",
		rep.Plan.NumExperiments(), rep.Plan.NumPairs(), rep.MachineTime.Round(1e9))
	fmt.Println("\npair                conditional(first|second)  independent  ratio")
	for _, m := range rep.Measurements {
		r := m.CondFirst / m.IndepFirst
		if r2 := m.CondSecond / m.IndepSecond; r2 > r {
			r = r2
		}
		fmt.Printf("%-18s  %.4f / %.4f             %.4f/%.4f  %.1fx\n",
			m.Pair, m.CondFirst, m.CondSecond, m.IndepFirst, m.IndepSecond, r)
	}
	fmt.Println("\ndetected high-crosstalk pairs (threshold", threshold, "x):")
	for _, p := range rep.HighCrosstalkPairs(threshold) {
		fmt.Println("  ", p)
	}
	return nil
}
