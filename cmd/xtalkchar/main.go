// Command xtalkchar runs a crosstalk characterization campaign on a
// simulated device and prints the measurement plan, machine-time estimate,
// measured conditional error rates, and detected high-crosstalk pairs. The
// campaign runs through the compilation pipeline's characterization
// front-end, so the measured noise data is installed exactly as a scheduling
// pipeline would consume it.
//
// Usage:
//
//	xtalkchar -device poughkeepsie -policy one-hop+binpack
//	xtalkchar -device grid:4x5 -policy one-hop
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"xtalk/internal/characterize"
	"xtalk/internal/device"
	"xtalk/internal/pipeline"
	"xtalk/internal/rb"
)

func main() {
	var (
		devSpec   = flag.String("device", "", "device spec: "+device.SpecGrammar)
		system    = flag.String("system", "poughkeepsie", "deprecated alias for -device")
		policy    = flag.String("policy", "one-hop+binpack", "all-pairs|one-hop|one-hop+binpack|high-crosstalk-only")
		seed      = flag.Int64("seed", 1, "device + experiment seed")
		day       = flag.Int("day", 0, "calibration day (drift model)")
		threshold = flag.Float64("threshold", 3, "high-crosstalk detection ratio")
	)
	flag.Parse()
	spec := *devSpec
	if spec == "" {
		spec = *system
	}
	if err := run(spec, *policy, *seed, *day, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkchar:", err)
		os.Exit(1)
	}
}

func run(spec, policyName string, seed int64, day int, threshold float64) error {
	dev, err := device.NewFromSpecForDay(spec, seed, day)
	if err != nil {
		return err
	}
	policy, err := characterize.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	var highPairs []device.EdgePair
	if policy == characterize.HighCrosstalkOnly {
		// Seed the daily refresh from ground truth (in practice: from the
		// last full campaign).
		highPairs = dev.Cal.HighCrosstalkPairs(threshold)
	}
	cfg := rb.DefaultConfig()
	cfg.Seed = seed
	p := pipeline.New(dev, pipeline.Config{Threshold: threshold})
	rep, err := p.Characterize(context.Background(), policy, highPairs, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s, day %d, policy %s\n", dev.Topo.Name, day, policy)
	fmt.Printf("experiments: %d batches covering %d pairs; modeled machine time %s\n",
		rep.Plan.NumExperiments(), rep.Plan.NumPairs(), rep.MachineTime.Round(1e9))
	fmt.Println("\npair                conditional(first|second)  independent  ratio")
	for _, m := range rep.Measurements {
		r := m.CondFirst / m.IndepFirst
		if r2 := m.CondSecond / m.IndepSecond; r2 > r {
			r = r2
		}
		fmt.Printf("%-18s  %.4f / %.4f             %.4f/%.4f  %.1fx\n",
			m.Pair, m.CondFirst, m.CondSecond, m.IndepFirst, m.IndepSecond, r)
	}
	fmt.Println("\ndetected high-crosstalk pairs (threshold", threshold, "x):")
	for _, pr := range rep.HighCrosstalkPairs(threshold) {
		fmt.Println("  ", pr)
	}
	nCond := 0
	for _, m := range p.Noise.Conditional {
		nCond += len(m)
	}
	fmt.Printf("\nscheduler noise data installed: %d independent rates, %d conditional entries\n",
		len(p.Noise.Independent), nCond)
	return nil
}
