// Command xtalkexp regenerates the paper's tables and figures against the
// simulated devices. Each experiment prints the rows/series of the
// corresponding figure (see EXPERIMENTS.md for the paper-vs-measured
// comparison).
//
// The compile-and-execute experiments run through the staged compilation
// pipeline as concurrent batches; -workers bounds the pool and Ctrl-C
// cancels in-flight SMT optimization promptly.
//
// Usage:
//
//	xtalkexp -exp fig5 -system poughkeepsie -shots 2048
//	xtalkexp -exp devicescale -devices linear:12,grid:5x8,heavyhex:65
//	xtalkexp -exp all -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"xtalk/internal/device"
	"xtalk/internal/experiments"
	"xtalk/internal/rb"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|scalability|devicescale|all")
		system    = flag.String("system", "", "system for fig3/fig5 (default: all three)")
		devices   = flag.String("devices", "", "comma-separated device specs for devicescale (default: the built-in sweep; specs: "+device.SpecGrammar+")")
		shots     = flag.Int("shots", 2048, "trials per circuit execution")
		seed      = flag.Int64("seed", 1, "master seed")
		omega     = flag.Float64("omega", 0.5, "crosstalk weight factor for fig5")
		threshold = flag.Float64("threshold", 3, "high-crosstalk detection ratio")
		budget    = flag.Duration("budget", 10*time.Second, "per-schedule SMT anytime budget")
		workers   = flag.Int("workers", 0, "concurrent pipeline workers (0 = sequential; concurrency shares CPU across SMT budgets)")
	)
	flag.Parse()
	experiments.SchedulerBudget = *budget
	opts := experiments.Options{Seed: *seed, Shots: *shots, Threshold: *threshold, Workers: *workers}
	systems := device.AllSystems
	if *system != "" {
		systems = []device.SystemName{device.SystemName(*system)}
	}
	var specs []string
	if *devices != "" {
		specs = strings.Split(*devices, ",")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *exp, systems, specs, *omega, opts); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, exp string, systems []device.SystemName, specs []string, omega float64, opts experiments.Options) error {
	rbCfg := rb.DefaultConfig()
	rbCfg.Seed = opts.Seed
	all := exp == "all"
	if all || exp == "fig3" {
		for _, name := range systems {
			res, err := experiments.Fig3(name, opts, rbCfg)
			if err != nil {
				return err
			}
			fmt.Println(res)
		}
	}
	if all || exp == "fig4" {
		res, err := experiments.Fig4(opts, rbCfg, 6)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "fig5" {
		for _, name := range systems {
			res, err := experiments.Fig5(ctx, name, omega, opts)
			if err != nil {
				return err
			}
			fmt.Println(res)
		}
	}
	if all || exp == "fig6" {
		res, err := experiments.Fig6(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "fig7" {
		res, err := experiments.Fig7(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "fig8" {
		res, err := experiments.Fig8(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "fig9" {
		for _, redundant := range []bool{false, true} {
			res, err := experiments.Fig9(ctx, redundant, opts)
			if err != nil {
				return err
			}
			fmt.Println(res)
		}
	}
	if all || exp == "fig10" {
		res, err := experiments.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "scalability" {
		res, err := experiments.Scalability(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || exp == "devicescale" {
		res, err := experiments.DeviceScale(ctx, opts, specs...)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	switch exp {
	case "all", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "scalability", "devicescale":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
