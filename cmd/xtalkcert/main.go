// Command xtalkcert certifies a served compilation artifact independently
// of the daemon that produced it. It reads an artifact JSON document — the
// body a running xtalkd returns from POST /compile — reconstructs the
// executable timing of the compiled QASM under hardware execution semantics
// (ASAP within barriers, one right-aligned readout slot), and runs the
// internal/certify checker against the device model named by the artifact's
// metadata. The claimed makespan and objective cost are then cross-checked
// against the reconstruction.
//
// Usage:
//
//	curl -s localhost:8077/compile -d @prog.json | xtalkcert
//	xtalkcert -in artifact.json -omega 0.5
//	xtalkcert -in artifact.json -strict   # metadata drift is fatal too
//
// Exit status: 0 when the artifact certifies clean (and, with -strict, the
// claimed metadata matches the reconstruction), 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"xtalk/internal/certify"
	"xtalk/internal/device"
	"xtalk/internal/qasm"
)

// artifactDoc is the subset of the daemon's /compile response (or any
// equivalently shaped artifact dump) that certification needs.
type artifactDoc struct {
	Fingerprint string  `json:"fingerprint"`
	Device      string  `json:"device"`
	Seed        int64   `json:"seed"`
	Day         int     `json:"day"`
	Scheduler   string  `json:"scheduler"`
	MakespanNS  float64 `json:"makespan_ns"`
	Cost        float64 `json:"cost"`
	QASM        string  `json:"qasm"`
}

func main() {
	var (
		in        = flag.String("in", "", "artifact JSON file (default: stdin)")
		omega     = flag.Float64("omega", 0.5, "crosstalk weight the daemon compiled with (for the cost cross-check)")
		threshold = flag.Float64("threshold", 3, "high-crosstalk detection ratio for the re-derived pair set")
		strict    = flag.Bool("strict", false, "treat claimed-metadata drift beyond -drift as a failure, not a warning")
		drift     = flag.Float64("drift", 0.05, "relative drift tolerated between claimed and reconstructed makespan/cost")
	)
	flag.Parse()
	if err := run(*in, *omega, *threshold, *strict, *drift); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkcert:", err)
		os.Exit(1)
	}
}

func run(in string, omega, threshold float64, strict bool, drift float64) error {
	var raw []byte
	var err error
	if in == "" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	var doc artifactDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("artifact JSON: %w", err)
	}
	if doc.QASM == "" {
		return fmt.Errorf("artifact carries no qasm payload")
	}
	if doc.Device == "" {
		return fmt.Errorf("artifact names no device")
	}
	circ, err := qasm.Parse(doc.QASM)
	if err != nil {
		return fmt.Errorf("artifact QASM does not parse: %w", err)
	}
	dev, err := device.NewFromSpecForDay(doc.Device, doc.Seed, doc.Day)
	if err != nil {
		return fmt.Errorf("artifact device model: %w", err)
	}

	s := certify.ReconstructASAP(circ, dev)
	rep := certify.Check(s, certify.Config{Omega: omega, Threshold: threshold})
	label := doc.Fingerprint
	if len(label) > 12 {
		label = label[:12]
	}
	fmt.Printf("artifact %s (%s on %s, seed %d, day %d)\n",
		label, doc.Scheduler, doc.Device, doc.Seed, doc.Day)
	fmt.Print(rep.String())
	if !rep.OK() {
		return fmt.Errorf("artifact failed certification")
	}
	fmt.Println()

	// Metadata cross-check. The daemon reports the engine schedule's
	// numbers; the reconstruction replays the barriered program, whose
	// timing can legitimately differ slightly (barriers cannot express
	// every alignment gap), so drift is a warning unless -strict.
	ok := true
	for _, chk := range []struct {
		name             string
		claimed, rebuilt float64
	}{
		{"makespan", doc.MakespanNS, rep.Makespan},
		{"cost", doc.Cost, rep.CostFloat},
	} {
		rel := 0.0
		if base := math.Max(math.Abs(chk.claimed), math.Abs(chk.rebuilt)); base > 0 {
			rel = math.Abs(chk.claimed-chk.rebuilt) / base
		}
		status := "ok"
		if rel > drift {
			status = "DRIFT"
			if strict {
				ok = false
			}
		}
		fmt.Printf("%-8s claimed %.6g, reconstructed %.6g (rel drift %.2g%%) %s\n",
			chk.name, chk.claimed, chk.rebuilt, 100*rel, status)
	}
	if !ok {
		return fmt.Errorf("claimed metadata drifts beyond %.2g%%", 100*drift)
	}
	return nil
}
