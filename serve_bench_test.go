package xtalk

// Serving-layer acceptance: a cache-hit compile must be orders of magnitude
// cheaper than the cold heavyhex:27 solve it memoizes, and the benchmark
// keeps the hit path honest over time.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xtalk/internal/device"
	"xtalk/internal/pipeline"
	"xtalk/internal/qasm"
	"xtalk/internal/serve"
	"xtalk/internal/workloads"
)

// heavyhexQAOASource builds the serving benchmark workload: a QAOA chain on
// the heavyhex:27 device, shipped as OpenQASM like a real client would.
func heavyhexQAOASource(tb testing.TB) string {
	tb.Helper()
	dev, err := device.NewFromSpec("heavyhex:27", 1)
	if err != nil {
		tb.Fatal(err)
	}
	c, _, err := workloads.QAOAChainCircuit(dev.Topo, 6, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return qasm.Dump(c)
}

func newServeBenchServer(tb testing.TB) *serve.Server {
	return newServeBenchServerWithStore(tb, "")
}

// newServeBenchServerWithStore optionally attaches the persistent disk tier
// rooted at dir (empty = memory-only).
func newServeBenchServerWithStore(tb testing.TB, dir string) *serve.Server {
	tb.Helper()
	s, err := serve.New(serve.Config{
		Spec:     "heavyhex:27",
		Seed:     1,
		StoreDir: dir,
		Pipeline: pipeline.Config{
			Budget:         2 * time.Second,
			Partition:      true,
			DecomposeSwaps: true,
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

// BenchmarkCompileCached measures the cache-hit path of the compilation
// service: the cold heavyhex:27 solve is paid once during setup, every
// iteration is a content-addressed hit. The reported custom metrics compare
// the two (cold_ms is the solve the cache saves per hit).
func BenchmarkCompileCached(b *testing.B) {
	s := newServeBenchServer(b)
	src := heavyhexQAOASource(b)
	cold, err := s.Compile(context.Background(), serve.CompileRequest{Source: src})
	if err != nil {
		b.Fatal(err)
	}
	if cold.Cached {
		b.Fatal("setup compile was already cached")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Compile(context.Background(), serve.CompileRequest{Source: src})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("iteration missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(cold.CompileMS, "cold_ms")
	if b.N > 0 && b.Elapsed() > 0 {
		hitMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
		if hitMS > 0 {
			b.ReportMetric(cold.CompileMS/hitMS, "speedup")
		}
	}
}

// TestCompileCachedSpeedup is the acceptance gate: a cache-hit compile must
// be at least 100x faster than the cold heavyhex:27 solve. The margin is
// huge in practice (sub-ms map lookup vs a multi-hundred-ms SMT solve), so
// the threshold is safe even on a loaded 1-core CI container.
func TestCompileCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("cold heavyhex:27 solve in -short mode")
	}
	s := newServeBenchServer(t)
	src := heavyhexQAOASource(t)

	t0 := time.Now()
	cold, err := s.Compile(context.Background(), serve.CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	coldTime := time.Since(t0)
	if cold.Cached {
		t.Fatal("first compile was already cached")
	}

	const hits = 50
	t0 = time.Now()
	for i := 0; i < hits; i++ {
		resp, err := s.Compile(context.Background(), serve.CompileRequest{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached || resp.Fingerprint != cold.Fingerprint {
			t.Fatalf("hit %d did not return the cached artifact", i)
		}
	}
	hitTime := time.Since(t0) / hits
	if hitTime == 0 {
		hitTime = time.Nanosecond
	}
	speedup := float64(coldTime) / float64(hitTime)
	t.Logf("cold %v, hit %v, speedup %.0fx", coldTime, hitTime, speedup)
	if speedup < 100 {
		t.Fatalf("cache hit only %.1fx faster than cold compile (%v vs %v), want >= 100x",
			speedup, hitTime, coldTime)
	}
}

// TestDiskWarmHitSpeedup is the persistence acceptance gate: a *restarted*
// daemon over a warm disk store must serve a previously compiled
// fingerprint at least 100x faster than the cold heavyhex:27 solve — and
// with zero solver invocations. The disk path pays a file read, a checksum
// and a binary decode, all sub-millisecond against a multi-hundred-ms SMT
// solve.
func TestDiskWarmHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("cold heavyhex:27 solve in -short mode")
	}
	dir := t.TempDir()
	src := heavyhexQAOASource(t)

	s1 := newServeBenchServerWithStore(t, dir)
	t0 := time.Now()
	cold, err := s1.Compile(context.Background(), serve.CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	coldTime := time.Since(t0)
	if cold.Tier != serve.TierCold {
		t.Fatalf("first compile tier %q, want cold", cold.Tier)
	}
	s1.Close()

	// Restart: new server state, empty memory tier, warm disk.
	s2 := newServeBenchServerWithStore(t, dir)
	t0 = time.Now()
	warm, err := s2.Compile(context.Background(), serve.CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	warmTime := time.Since(t0)
	if warm.Tier != serve.TierDisk || warm.Fingerprint != cold.Fingerprint || warm.QASM != cold.QASM {
		t.Fatalf("restart compile tier %q fp match %v, want bit-identical disk hit",
			warm.Tier, warm.Fingerprint == cold.Fingerprint)
	}
	if st := s2.Stats(); st.Solves != 0 {
		t.Fatalf("restarted daemon ran %d solves for a stored fingerprint, want 0", st.Solves)
	}
	if warmTime == 0 {
		warmTime = time.Nanosecond
	}
	speedup := float64(coldTime) / float64(warmTime)
	t.Logf("cold %v, disk warm hit %v, speedup %.0fx", coldTime, warmTime, speedup)
	if speedup < 100 {
		t.Fatalf("disk warm hit only %.1fx faster than cold solve (%v vs %v), want >= 100x",
			speedup, warmTime, coldTime)
	}
}

// BenchmarkServeMemHit measures the full warm-path round trip — HTTP POST,
// fingerprint memo, encoded-response tier, single socket write — through a
// real net/http server. This is the serving profile the response-bytes tier
// exists for: the cold heavyhex:27 solve is paid once in setup, then every
// iteration must be a memory hit that re-serves the same pre-encoded bytes.
func BenchmarkServeMemHit(b *testing.B) {
	s := newServeBenchServer(b)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := heavyhexQAOASource(b)
	body, err := json.Marshal(serve.CompileRequest{Source: src})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	post := func() *http.Response {
		resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
		return resp
	}

	// Setup: one cold solve, then one warm repeat decoded to prove the
	// iterations below really exercise the memory tier.
	for _, wantCached := range []bool{false, true} {
		resp := post()
		var cr serve.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if cr.Cached != wantCached {
			b.Fatalf("setup request cached=%v, want %v", cr.Cached, wantCached)
		}
		if wantCached && cr.Tier != serve.TierMem {
			b.Fatalf("warm repeat tier %q, want mem", cr.Tier)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := post()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	if st := s.Stats(); st.Solves != 1 {
		b.Fatalf("iterations leaked %d extra solves", st.Solves-1)
	}
}

// TestServeMemHitAllocGate pins the warm path's allocation budget. The
// measured allocs/op cover the whole loopback round trip — load-generator
// client included — so the ceiling is far above the server's own share, but
// low enough that an accidental per-hit re-encode of the response (tens of
// KiB of JSON plus encoder state) blows through it immediately.
func TestServeMemHitAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("cold heavyhex:27 solve in -short mode (and the gate is meaningless under -race)")
	}
	const maxAllocsPerOp = 120
	res := testing.Benchmark(BenchmarkServeMemHit)
	t.Logf("mem-hit round trip: %v/op, %d allocs/op, %d B/op",
		time.Duration(res.NsPerOp()), res.AllocsPerOp(), res.AllocedBytesPerOp())
	if allocs := res.AllocsPerOp(); allocs > maxAllocsPerOp {
		t.Fatalf("warm-path round trip costs %d allocs/op, want <= %d — did a per-hit encode sneak back in?",
			allocs, maxAllocsPerOp)
	}
}
